//! Per-round trace contexts and slow-round exemplars.
//!
//! The serve pipeline processes one attestation *round* through five
//! stages — accept queue, dispatcher, shard queue, worker replay,
//! verdict batch flush. A [`RoundCollector`] threads a `u64` trace id
//! (minted when the round's CHALLENGE is issued) through all of them
//! and retains the full [`StageSpan`] tree of *slow* rounds — rounds
//! whose end-to-end latency exceeds a threshold — in a bounded ring of
//! [`RoundExemplar`]s, together with the device id and the queue
//! depths observed when the connection was enqueued.
//!
//! Cost discipline (same contract as [`trace`](crate::trace)): a
//! disabled collector costs one relaxed atomic load plus a branch per
//! round. Fast rounds on an *enabled* collector cost two additional
//! relaxed RMWs (the trace-id mint and the seen counter); only rounds
//! over the threshold build spans and take the ring lock.
//!
//! The collector is deliberately clock-free: callers pass nanosecond
//! offsets relative to an epoch they own (the server's start instant),
//! which keeps every method deterministic and directly testable.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::Json;

/// One timed pipeline stage of one round. All offsets are nanoseconds
/// relative to the collector owner's epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpan {
    /// The round's trace id — every span in one round's tree carries
    /// the same value.
    pub trace_id: u64,
    /// Stage name (`"accept"`, `"dispatch"`, `"shard_queue"`,
    /// `"replay"`, `"flush"`).
    pub stage: &'static str,
    /// Stage start, ns since the epoch.
    pub start_ns: u64,
    /// Stage duration in ns.
    pub dur_ns: u64,
}

impl StageSpan {
    fn to_json(&self) -> Json {
        Json::obj([
            ("trace_id", Json::Uint(self.trace_id)),
            ("stage", Json::Str(self.stage.to_string())),
            ("start_ns", Json::Uint(self.start_ns)),
            ("dur_ns", Json::Uint(self.dur_ns)),
        ])
    }
}

/// A retained slow round: its full span tree plus the context needed
/// to attribute the latency (device, verdict, queue depths at enqueue
/// time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundExemplar {
    /// Trace id minted at CHALLENGE issue.
    pub trace_id: u64,
    /// Device the round belonged to.
    pub device: String,
    /// End-to-end latency (challenge issue → verdict flushed), ns.
    pub total_ns: u64,
    /// Whether the round's evidence verified.
    pub accepted: bool,
    /// Accept-queue depth when the connection was enqueued.
    pub accept_depth: u32,
    /// Shard-queue depth when the connection was enqueued.
    pub shard_depth: u32,
    /// Per-stage spans, in pipeline order.
    pub spans: Vec<StageSpan>,
}

impl RoundExemplar {
    fn to_json(&self) -> Json {
        Json::obj([
            ("trace_id", Json::Uint(self.trace_id)),
            ("device", Json::Str(self.device.clone())),
            ("total_ns", Json::Uint(self.total_ns)),
            ("accepted", Json::Bool(self.accepted)),
            ("accept_depth", Json::Uint(u64::from(self.accept_depth))),
            ("shard_depth", Json::Uint(u64::from(self.shard_depth))),
            (
                "spans",
                Json::Arr(self.spans.iter().map(StageSpan::to_json).collect()),
            ),
        ])
    }
}

struct Ring {
    items: VecDeque<RoundExemplar>,
    evicted: u64,
}

/// Mints per-round trace ids and retains slow-round exemplars in a
/// bounded ring.
///
/// Constructed disabled; [`RoundCollector::set_enabled`] arms it. A
/// server owns one collector per instance (rather than a process
/// global) so concurrent servers in one process do not mix exemplars.
pub struct RoundCollector {
    enabled: AtomicBool,
    threshold_ns: u64,
    capacity: usize,
    next_trace_id: AtomicU64,
    rounds_seen: AtomicU64,
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for RoundCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundCollector")
            .field("enabled", &self.enabled())
            .field("threshold_ns", &self.threshold_ns)
            .field("capacity", &self.capacity)
            .field("rounds_seen", &self.rounds_seen())
            .finish()
    }
}

impl RoundCollector {
    /// Creates a disabled collector: rounds strictly slower than
    /// `threshold_ns` are retained, at most `capacity` at a time
    /// (oldest evicted first). A threshold of 0 retains every round —
    /// useful for tests and for forcing an exemplar in a smoke run.
    pub fn new(threshold_ns: u64, capacity: usize) -> RoundCollector {
        RoundCollector {
            enabled: AtomicBool::new(false),
            threshold_ns,
            capacity: capacity.max(1),
            next_trace_id: AtomicU64::new(0),
            rounds_seen: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                items: VecDeque::new(),
                evicted: 0,
            }),
        }
    }

    /// Arms or disarms the collector.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether rounds are being tracked — one relaxed load, the whole
    /// disabled-path cost.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Mints the next trace id (ids start at 1 and never repeat within
    /// a collector).
    #[inline]
    pub fn mint(&self) -> u64 {
        self.next_trace_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The retention threshold in ns.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rounds offered to the collector while enabled.
    pub fn rounds_seen(&self) -> u64 {
        self.rounds_seen.load(Ordering::Relaxed)
    }

    /// Exemplars evicted from the ring to make room for newer ones.
    pub fn evicted(&self) -> u64 {
        self.ring.lock().unwrap().evicted
    }

    /// Offers one finished round. `build` is called — and the ring lock
    /// taken — only when `total_ns` exceeds the threshold, so fast
    /// rounds stay on the lock-free path.
    pub fn record(&self, total_ns: u64, build: impl FnOnce() -> RoundExemplar) {
        if !self.enabled() {
            return;
        }
        self.rounds_seen.fetch_add(1, Ordering::Relaxed);
        if total_ns <= self.threshold_ns {
            return;
        }
        let mut ring = self.ring.lock().unwrap();
        if ring.items.len() >= self.capacity {
            ring.items.pop_front();
            ring.evicted += 1;
        }
        ring.items.push_back(build());
    }

    /// A point-in-time copy of the retained exemplars, oldest first.
    pub fn exemplars(&self) -> Vec<RoundExemplar> {
        self.ring.lock().unwrap().items.iter().cloned().collect()
    }

    /// The collector's full state as one JSON document — the payload
    /// the serve admin endpoint returns for an `EXEMPLARS` request.
    pub fn to_json(&self) -> Json {
        let ring = self.ring.lock().unwrap();
        Json::obj([
            ("threshold_ns", Json::Uint(self.threshold_ns)),
            ("capacity", Json::Uint(self.capacity as u64)),
            ("rounds_seen", Json::Uint(self.rounds_seen())),
            ("retained", Json::Uint(ring.items.len() as u64)),
            ("evicted", Json::Uint(ring.evicted)),
            (
                "exemplars",
                Json::Arr(ring.items.iter().map(RoundExemplar::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exemplar(trace_id: u64, total_ns: u64) -> RoundExemplar {
        RoundExemplar {
            trace_id,
            device: "dev".to_string(),
            total_ns,
            accepted: true,
            accept_depth: 0,
            shard_depth: 2,
            spans: vec![StageSpan {
                trace_id,
                stage: "replay",
                start_ns: 10,
                dur_ns: total_ns,
            }],
        }
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let rc = RoundCollector::new(0, 8);
        rc.record(1_000_000, || panic!("must not build while disabled"));
        assert_eq!(rc.rounds_seen(), 0);
        assert!(rc.exemplars().is_empty());
    }

    #[test]
    fn only_rounds_above_threshold_are_retained() {
        let rc = RoundCollector::new(1_000, 8);
        rc.set_enabled(true);
        rc.record(500, || panic!("below threshold: must not build"));
        rc.record(1_000, || panic!("at threshold: strictly-above rule"));
        rc.record(1_001, || exemplar(1, 1_001));
        assert_eq!(rc.rounds_seen(), 3);
        let kept = rc.exemplars();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].total_ns, 1_001);
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let rc = RoundCollector::new(0, 3);
        rc.set_enabled(true);
        for i in 1..=5u64 {
            rc.record(i * 10, || exemplar(i, i * 10));
        }
        let kept = rc.exemplars();
        assert_eq!(kept.len(), 3);
        assert_eq!(
            kept.iter().map(|e| e.trace_id).collect::<Vec<_>>(),
            vec![3, 4, 5],
            "oldest exemplars are evicted first"
        );
        assert_eq!(rc.evicted(), 2);
    }

    #[test]
    fn trace_ids_are_unique_and_increasing() {
        let rc = RoundCollector::new(0, 1);
        let ids: Vec<u64> = (0..100).map(|_| rc.mint()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
        assert_eq!(ids[0], 1);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn json_shape_round_trips_through_the_parser() {
        let rc = RoundCollector::new(100, 4);
        rc.set_enabled(true);
        rc.record(5_000, || exemplar(7, 5_000));
        let text = rc.to_json().to_pretty();
        let doc = crate::json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("threshold_ns").and_then(Json::as_u64), Some(100));
        assert_eq!(doc.get("rounds_seen").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("retained").and_then(Json::as_u64), Some(1));
        let ex = &doc.get("exemplars").and_then(Json::as_array).unwrap()[0];
        assert_eq!(ex.get("trace_id").and_then(Json::as_u64), Some(7));
        assert_eq!(ex.get("device").and_then(Json::as_str), Some("dev"));
        let span = &ex.get("spans").and_then(Json::as_array).unwrap()[0];
        assert_eq!(span.get("stage").and_then(Json::as_str), Some("replay"));
        assert_eq!(span.get("trace_id").and_then(Json::as_u64), Some(7));
    }
}
