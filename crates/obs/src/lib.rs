//! # rap-obs — zero-dependency observability for the RAP-Track pipeline
//!
//! A hand-rolled, std-only metrics + tracing layer (the workspace is
//! air-gapped, DESIGN.md §8, so `tracing`/`metrics`/`serde` are out).
//! Three pieces:
//!
//! * a [metrics registry](registry) — named atomic [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket [`Histogram`]s, captured into diffable
//!   [`Snapshot`]s and rendered as Prometheus-style text or JSON;
//! * a [span/event API](trace) — per-thread ring-buffer sinks feeding a
//!   global collector; a *disabled* collector costs one relaxed atomic
//!   load plus a branch per site (measured in `benches/obs.rs`);
//! * a [round tracker](rounds) — per-round trace ids plus a bounded
//!   ring of slow-round [`RoundExemplar`]s with full stage-span trees,
//!   the substrate behind rap-serve's admin telemetry endpoint;
//! * a tiny [JSON](json) writer/parser used by the snapshots, the bench
//!   harness (`BENCH_*.json`) and the `figures` binary.
//!
//! Instrumentation sites use the [`counter!`] / [`gauge!`] /
//! [`histogram!`] macros, which resolve the handle once per call site:
//!
//! ```
//! rap_obs::counter!("demo_jobs_total").inc();
//! rap_obs::gauge!("demo_queue_depth").set(3);
//! rap_obs::histogram!("demo_lat_ns", &rap_obs::LATENCY_NS_BOUNDS).observe(250);
//! let snap = rap_obs::global().snapshot();
//! assert_eq!(snap.counter("demo_jobs_total"), 1);
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod registry;
pub mod rounds;
pub mod trace;

pub use json::{Json, JsonError};
pub use registry::{
    bucket_quantile, global, CachePadded, Counter, Gauge, Histogram, HistogramSnapshot, Registry,
    Snapshot, LATENCY_NS_BOUNDS, ROUND_LATENCY_NS_BOUNDS,
};
pub use rounds::{RoundCollector, RoundExemplar, StageSpan};
pub use trace::{
    disable as disable_tracing, drain as drain_events, dropped as dropped_events,
    enable as enable_tracing, enabled as tracing_enabled, event, flush_thread, span, SpanGuard,
    TraceEvent,
};

/// Returns the global counter named by the (constant) string literal,
/// resolving and caching the handle on first use at this call site.
///
/// The name must be the same on every execution of the call site — for
/// dynamic names (labels), call [`global()`]`.counter(&name)` directly.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Returns the global gauge named by the (constant) string literal;
/// see [`counter!`] for the caching contract.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// Returns the global histogram named by the (constant) string literal
/// with the given bucket bounds; see [`counter!`] for the caching
/// contract (first registration's bounds win).
#[macro_export]
macro_rules! histogram {
    ($name:expr, $bounds:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::global().histogram($name, $bounds))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_cache_global_handles() {
        for _ in 0..3 {
            crate::counter!("lib_test_total").inc();
        }
        crate::gauge!("lib_test_gauge").set(7);
        crate::histogram!("lib_test_hist", &[10, 100]).observe(42);
        let snap = crate::global().snapshot();
        assert_eq!(snap.counter("lib_test_total"), 3);
        assert_eq!(snap.gauge("lib_test_gauge"), 7);
        assert_eq!(snap.histogram("lib_test_hist").unwrap().count, 1);
    }
}
