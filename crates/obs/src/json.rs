//! A small, std-only JSON document model with a writer and a parser.
//!
//! The workspace is air-gapped (DESIGN.md §8) so there is no `serde`;
//! this module carries the handful of JSON features the repo needs —
//! metric snapshots, bench result files, figure series — and nothing
//! more. Numbers distinguish unsigned, signed and floating values so
//! `u64` counters round-trip exactly (an `f64` would corrupt counts
//! above 2^53).

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (round-trips `u64` exactly).
    Uint(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number. Non-finite values render as `null`
    /// (JSON has no `NaN`/`Infinity`).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (&'static str, Json)>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object; `None` for other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Uint(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Uint(v) => i64::try_from(*v).ok(),
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Uint(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's `(key, value)` pairs.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation — the format every
    /// `BENCH_*.json` / metrics artifact in the repo uses.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Uint(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // `{:?}` keeps a trailing `.0` on integral floats so
                    // the value re-parses as a float, not an integer.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What the parser expected or rejected.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (rejects trailing garbage).
///
/// Only what the repo's own writer produces is supported: no leniency
/// about commas or bare values. `\uXXXX` escapes are decoded strictly
/// — exactly four hex digits, surrogate pairs combined into one
/// scalar, lone surrogates rejected with the byte offset. Good enough
/// to read back our own artifacts, which is its whole job
/// (`rap stats`, test assertions).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    /// Reads exactly four ASCII hex digits starting at `at` and
    /// returns the UTF-16 code unit they spell. The error offset
    /// points at the first non-hex byte.
    fn hex4(&self, at: usize) -> Result<u16, JsonError> {
        let mut unit: u16 = 0;
        for i in 0..4 {
            let digit = match self.bytes.get(at + i).copied() {
                Some(b @ b'0'..=b'9') => b - b'0',
                Some(b @ b'a'..=b'f') => b - b'a' + 10,
                Some(b @ b'A'..=b'F') => b - b'A' + 10,
                _ => {
                    return Err(JsonError {
                        offset: at + i,
                        message: "\\u escape needs exactly four hex digits".to_string(),
                    })
                }
            };
            unit = (unit << 4) | u16::from(digit);
        }
        Ok(unit)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            // `pos` points at the `u`; four hex digits
                            // follow. Digits are validated one byte at
                            // a time — `u32::from_str_radix` would
                            // tolerate a leading `+` (e.g. `\u+041`)
                            // and silently decode the wrong character.
                            let unit = self.hex4(self.pos + 1)?;
                            match unit {
                                0xD800..=0xDBFF => {
                                    // High surrogate: a second escape
                                    // with a low surrogate must follow
                                    // and the pair combines into one
                                    // scalar beyond the BMP.
                                    if self.bytes.get(self.pos + 5) != Some(&b'\\')
                                        || self.bytes.get(self.pos + 6) != Some(&b'u')
                                    {
                                        return Err(JsonError {
                                            offset: self.pos + 1,
                                            message: "unpaired high surrogate in \\u escape"
                                                .to_string(),
                                        });
                                    }
                                    let low = self.hex4(self.pos + 7)?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(JsonError {
                                            offset: self.pos + 7,
                                            message:
                                                "high surrogate not followed by a low surrogate"
                                                    .to_string(),
                                        });
                                    }
                                    let scalar = 0x10000
                                        + ((u32::from(unit) - 0xD800) << 10)
                                        + (u32::from(low) - 0xDC00);
                                    out.push(
                                        char::from_u32(scalar)
                                            .expect("combined surrogate pair is a scalar"),
                                    );
                                    self.pos += 10;
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(JsonError {
                                        offset: self.pos + 1,
                                        message: "unpaired low surrogate in \\u escape".to_string(),
                                    });
                                }
                                _ => {
                                    out.push(
                                        char::from_u32(u32::from(unit))
                                            .expect("non-surrogate BMP unit is a scalar"),
                                    );
                                    self.pos += 4;
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is &str, so
                    // byte boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Uint(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let doc = Json::obj([
            ("name", Json::Str("fleet/threads-4".into())),
            ("count", Json::Uint(u64::MAX)),
            ("delta", Json::Int(-17)),
            ("ratio", Json::Num(0.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "series",
                Json::Arr(vec![Json::Uint(1), Json::Uint(2), Json::Uint(3)]),
            ),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc, "failed on: {text}");
        }
    }

    #[test]
    fn u64_counters_roundtrip_exactly() {
        // 2^53 + 1 is not representable as f64; Uint must survive.
        let v = (1u64 << 53) + 1;
        let text = Json::Uint(v).to_compact();
        assert_eq!(parse(&text).unwrap().as_u64(), Some(v));
    }

    #[test]
    fn escapes_roundtrip() {
        let doc = Json::Str("quote \" slash \\ nl \n tab \t ctrl \u{1} λ".into());
        assert_eq!(parse(&doc.to_compact()).unwrap(), doc);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = Json::Num(2.0).to_compact();
        assert_eq!(text, "2.0");
        assert_eq!(parse(&text).unwrap(), Json::Num(2.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"a": 3, "b": [1.5], "c": "x", "d": -2}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("d").and_then(Json::as_i64), Some(-2));
        assert_eq!(
            doc.get("b").and_then(Json::as_array).map(|a| a.len()),
            Some(1)
        );
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        assert!(doc.get("missing").is_none());
        assert_eq!(doc.entries().map(|e| e.len()), Some(4));
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn unicode_escapes_decode_strictly() {
        // Plain BMP escapes, both hex cases.
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".into()));
        assert_eq!(parse(r#""λ""#).unwrap(), Json::Str("\u{3bb}".into()));
        assert_eq!(parse(r#""λ""#).unwrap(), Json::Str("\u{3bb}".into()));
        // A surrogate pair combines into one scalar beyond the BMP.
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("\u{1F600}".into()));
    }

    #[test]
    fn plus_sign_in_unicode_escape_is_a_typed_error() {
        // `u32::from_str_radix` accepts a leading `+`, so "\u+041"
        // used to silently decode as "A". It must be a parse error
        // whose offset points at the `+`.
        let err = parse(r#""\u+041""#).unwrap_err();
        assert_eq!(err.offset, 3);
        assert!(err.message.contains("four hex digits"), "{err}");
        // Same for any other non-hex byte, wherever it sits.
        let err = parse(r#""\u00 1""#).unwrap_err();
        assert_eq!(err.offset, 5);
        // And for an escape truncated by the closing quote.
        assert!(parse(r#""\u00""#).is_err());
    }

    #[test]
    fn lone_surrogates_are_typed_errors_with_offsets() {
        let err = parse(r#""\ud83d""#).unwrap_err();
        assert!(err.message.contains("unpaired high surrogate"), "{err}");
        assert_eq!(err.offset, 3);

        let err = parse(r#""\ude00""#).unwrap_err();
        assert!(err.message.contains("unpaired low surrogate"), "{err}");

        // A high surrogate with no escape after it at all.
        let err = parse(r#""\ud83dA""#).unwrap_err();
        assert!(err.message.contains("unpaired high surrogate"), "{err}");

        // A high surrogate followed by an escape that is not a low
        // surrogate.
        let err = parse(r#""\ud83d\u0041""#).unwrap_err();
        assert!(
            err.message.contains("not followed by a low surrogate"),
            "{err}"
        );
        assert_eq!(err.offset, 9);
    }

    #[test]
    fn writer_output_with_non_ascii_labels_roundtrips() {
        // Metric labels are arbitrary UTF-8; the writer emits
        // non-ASCII raw and escapes control bytes, and the parser must
        // read every one of them back verbatim — including astral
        // characters, which a `\uXXXX` escape would spell as a
        // surrogate pair.
        for label in [
            "latency µs",
            "očet_zařízení",
            "署名検証",
            "emoji 😀🚀 path",
            "mixed \u{1} ctrl λ \u{10FFFF}",
        ] {
            let doc = Json::obj([(label, Json::Str(label.into()))]);
            for text in [doc.to_compact(), doc.to_pretty()] {
                assert_eq!(parse(&text).unwrap(), doc, "failed on: {text}");
            }
            // The escaped spelling of the same string must also parse
            // back to it (covers the surrogate-pair decode path even
            // though our writer emits astral characters raw).
            let escaped: String = label
                .chars()
                .flat_map(|c| {
                    let mut units = [0u16; 2];
                    c.encode_utf16(&mut units)
                        .iter()
                        .map(|u| format!("\\u{u:04x}"))
                        .collect::<Vec<_>>()
                })
                .collect();
            assert_eq!(
                parse(&format!("\"{escaped}\"")).unwrap(),
                Json::Str(label.into()),
                "failed on: {escaped}"
            );
        }
    }
}
