//! A TRACES-style instrumentation-based CFA baseline.
//!
//! TRACES (Caulfield et al., 2024) is the state-of-the-art TEE-based CFA
//! the paper compares against: every non-deterministic transfer calls a
//! Secure-World logger through a secure gateway, paying a full context
//! switch per logged event, with software-side `CF_Log` optimizations
//! (loop-condition folding, run-length compression of repeated entries).
//!
//! The instrumentation pass reuses RAP-Track's branch classification so
//! both systems log the *same* event set — this also serves as the
//! "instrumentation that records the exact branches tracked by
//! RAP-Track" comparison of §V-B. The differences are purely in *how*:
//!
//! | | RAP-Track | TRACES |
//! |---|---|---|
//! | event capture | MTB hardware, in parallel | `SG` call, context switch |
//! | entry size | 8-byte MTB packet | 4-byte software record |
//! | compression | none (hardware writes raw) | RLE on repeated records |

use armv8m_isa::{service, AsmError, Image, Instr, Item, Module, Reg, Target};
use mcu_sim::{cycles, ExecError, Machine, SecureEnv, SecureWorld};
use rap_link::{classify, Cfg, CfgError, ClassifyOptions, Disposition, LoopPlanKind};

/// Instrumentation/logging configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracesConfig {
    /// Classification switches (kept aligned with RAP-Track's).
    pub classify: ClassifyOptions,
    /// Run-length-compress repeated identical records (a TRACES
    /// optimization; disable for the §V-B instrumentation-equivalent
    /// baseline).
    pub rle: bool,
    /// Bytes per uncompressed log record (4 for TRACES' software
    /// encoding; 8 for the MTB-equivalent comparison).
    pub entry_bytes: usize,
    /// Secure-World log buffer capacity in bytes before a partial
    /// report must be transmitted (4 KiB as in the prototype).
    pub buffer_bytes: usize,
}

impl Default for TracesConfig {
    fn default() -> TracesConfig {
        TracesConfig {
            classify: ClassifyOptions::default(),
            rle: true,
            entry_bytes: 4,
            buffer_bytes: 4096,
        }
    }
}

impl TracesConfig {
    /// The §V-B variant: logs the exact RAP-Track event set with the
    /// same per-entry cost and no compression, isolating the runtime
    /// difference between instrumentation and parallel tracking.
    pub fn instrumentation_equivalent() -> TracesConfig {
        TracesConfig {
            rle: false,
            entry_bytes: trace_units::TraceEntry::BYTES,
            ..TracesConfig::default()
        }
    }
}

/// Errors from the instrumentation pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstrumentError {
    /// CFG recovery failed.
    Cfg(CfgError),
    /// Re-assembly failed.
    Asm(AsmError),
}

impl std::fmt::Display for InstrumentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstrumentError::Cfg(e) => write!(f, "cfg recovery failed: {e}"),
            InstrumentError::Asm(e) => write!(f, "assembly failed: {e}"),
        }
    }
}

impl std::error::Error for InstrumentError {}

impl From<CfgError> for InstrumentError {
    fn from(e: CfgError) -> InstrumentError {
        InstrumentError::Cfg(e)
    }
}

impl From<AsmError> for InstrumentError {
    fn from(e: AsmError) -> InstrumentError {
        InstrumentError::Asm(e)
    }
}

/// An instrumented application ready to run under the TRACES logger.
#[derive(Debug, Clone)]
pub struct TracesProgram {
    /// The instrumented module.
    pub module: Module,
    /// The assembled image.
    pub image: Image,
    /// Size of the uninstrumented binary in bytes.
    pub original_size: u32,
    /// Logging configuration.
    pub config: TracesConfig,
}

impl TracesProgram {
    /// Code-size overhead in bytes (Fig. 10 metric).
    pub fn size_overhead(&self) -> u32 {
        (self.image.end() - self.image.base()).saturating_sub(self.original_size)
    }
}

/// Instruments `module` with TRACES-style secure-gateway logging calls.
///
/// # Errors
///
/// Returns [`InstrumentError`] when CFG recovery or re-assembly fails.
pub fn instrument(
    module: &Module,
    base: u32,
    config: TracesConfig,
) -> Result<TracesProgram, InstrumentError> {
    let original_size = module.size();
    let cfg = Cfg::build(module)?;
    let cls = classify(&cfg, config.classify);

    let mut sg_at_header: Vec<Option<usize>> = vec![None; cfg.nodes.len()];
    for (p, plan) in cls.loop_plans.iter().enumerate() {
        if plan.kind == LoopPlanKind::Logged {
            sg_at_header[plan.header] = Some(p);
        }
    }

    let mut out: Vec<Item> = Vec::with_capacity(module.items.len() * 2);
    let mut stubs: Vec<Item> = Vec::new();
    let mut stub_id = 0usize;

    for (i, node) in cfg.nodes.iter().enumerate() {
        if let Some(p) = sg_at_header[i] {
            out.push(Item::Instr(Instr::SecureGateway {
                service: service::LOG_LOOP_COND,
                arg: cls.loop_plans[p].iter,
            }));
        }
        for label in &node.labels {
            if node.func_entry.as_deref() == Some(label.as_str()) {
                out.push(Item::Func(label.clone()));
            } else {
                out.push(Item::Label(label.clone()));
            }
        }

        let instr = match &node.op {
            rap_link::FlatOp::LoadAddr { rd, target } => {
                out.push(Item::LoadAddr {
                    rd: *rd,
                    target: target.clone(),
                });
                continue;
            }
            rap_link::FlatOp::Instr(instr) => instr,
        };

        match cls.dispositions[i] {
            Disposition::Keep
            | Disposition::SimpleLoopLatch { .. }
            | Disposition::StaticLoopLatch { .. } => out.push(Item::Instr(instr.clone())),
            Disposition::IndirectCall => {
                let Instr::Blx { rm } = instr else {
                    unreachable!()
                };
                out.push(Item::Instr(Instr::SecureGateway {
                    service: service::LOG_INDIRECT,
                    arg: *rm,
                }));
                out.push(Item::Instr(instr.clone()));
            }
            Disposition::ReturnPop => {
                let Instr::Pop { list } = instr else {
                    unreachable!()
                };
                // The return address sits above the other popped
                // registers: offset = 4 × (n - 1).
                let offset = 4 * (list.len() as u16 - 1);
                out.push(Item::Instr(Instr::LdrImm {
                    rt: Reg::R12,
                    rn: Reg::Sp,
                    offset,
                }));
                out.push(Item::Instr(Instr::SecureGateway {
                    service: service::LOG_RETURN,
                    arg: Reg::R12,
                }));
                out.push(Item::Instr(instr.clone()));
            }
            Disposition::LoadJump => {
                let probe = match instr {
                    Instr::LdrImm { rn, offset, .. } => Instr::LdrImm {
                        rt: Reg::R12,
                        rn: *rn,
                        offset: *offset,
                    },
                    Instr::LdrReg { rn, rm, .. } => Instr::LdrReg {
                        rt: Reg::R12,
                        rn: *rn,
                        rm: *rm,
                    },
                    _ => unreachable!(),
                };
                out.push(Item::Instr(probe));
                out.push(Item::Instr(Instr::SecureGateway {
                    service: service::LOG_INDIRECT,
                    arg: Reg::R12,
                }));
                out.push(Item::Instr(instr.clone()));
            }
            Disposition::IndirectJump => {
                let Instr::Bx { rm } = instr else {
                    unreachable!()
                };
                out.push(Item::Instr(Instr::SecureGateway {
                    service: service::LOG_INDIRECT,
                    arg: *rm,
                }));
                out.push(Item::Instr(instr.clone()));
            }
            Disposition::CondTaken => {
                let Instr::BCond { cond, target } = instr else {
                    unreachable!()
                };
                let stub = format!("__traces_stub_{stub_id}");
                stub_id += 1;
                out.push(Item::Instr(Instr::BCond {
                    cond: *cond,
                    target: Target::label(stub.clone()),
                }));
                stubs.push(Item::Label(stub));
                stubs.push(Item::Instr(Instr::SecureGateway {
                    service: service::LOG_COND_OUTCOME,
                    arg: Reg::R0,
                }));
                stubs.push(Item::Instr(Instr::B {
                    target: target.clone(),
                }));
            }
            Disposition::LoopForward => {
                // The conditional stays; the continue path logs itself.
                out.push(Item::Instr(instr.clone()));
                out.push(Item::Instr(Instr::SecureGateway {
                    service: service::LOG_COND_OUTCOME,
                    arg: Reg::R0,
                }));
            }
            Disposition::CondBoth => {
                // Both directions logged (parity with RAP-Track's
                // disambiguation instrumentation).
                let Instr::BCond { cond, target } = instr else {
                    unreachable!()
                };
                let stub = format!("__traces_stub_{stub_id}");
                stub_id += 1;
                out.push(Item::Instr(Instr::BCond {
                    cond: *cond,
                    target: Target::label(stub.clone()),
                }));
                out.push(Item::Instr(Instr::SecureGateway {
                    service: service::LOG_COND_OUTCOME,
                    arg: Reg::R0,
                }));
                stubs.push(Item::Label(stub));
                stubs.push(Item::Instr(Instr::SecureGateway {
                    service: service::LOG_COND_OUTCOME,
                    arg: Reg::R0,
                }));
                stubs.push(Item::Instr(Instr::B {
                    target: target.clone(),
                }));
            }
        }
    }

    out.extend(stubs);
    let module = Module { items: out };
    let image = module.assemble(base)?;
    Ok(TracesProgram {
        module,
        image,
        original_size,
        config,
    })
}

/// The TRACES Secure-World logger: appends software records, applies
/// RLE, and transmits a partial report whenever the 4 KiB log buffer
/// fills.
#[derive(Debug, Clone)]
pub struct TracesWorld {
    config: TracesConfig,
    /// (record word, repeat count) pairs since the last flush.
    run: Vec<(u32, u32)>,
    buffered_bytes: usize,
    /// Total `CF_Log` bytes produced across the whole run.
    pub total_bytes: usize,
    /// Total logged events before compression.
    pub events: u64,
    /// Partial + final report transmissions.
    pub transmissions: usize,
}

impl TracesWorld {
    /// Creates a logger with the given configuration.
    pub fn new(config: TracesConfig) -> TracesWorld {
        TracesWorld {
            config,
            run: Vec::new(),
            buffered_bytes: 0,
            total_bytes: 0,
            events: 0,
            transmissions: 0,
        }
    }

    fn push(&mut self, word: u32) -> u64 {
        self.events += 1;
        let mut added = self.config.entry_bytes;
        if self.config.rle {
            if let Some(last) = self.run.last_mut() {
                if last.0 == word {
                    // Extending a run: the count field was already
                    // accounted the first time the run doubled.
                    if last.1 == 1 {
                        added = 4; // count word materializes
                    } else {
                        added = 0;
                    }
                    last.1 += 1;
                    self.buffered_bytes += added;
                    self.total_bytes += added;
                    return cycles::LOG_APPEND;
                }
            }
        }
        self.run.push((word, 1));
        self.buffered_bytes += added;
        self.total_bytes += added;
        let mut cost = cycles::LOG_APPEND;
        if self.buffered_bytes >= self.config.buffer_bytes {
            cost += self.flush();
        }
        cost
    }

    fn flush(&mut self) -> u64 {
        let bytes = self.buffered_bytes;
        self.run.clear();
        self.buffered_bytes = 0;
        self.transmissions += 1;
        cycles::REPORT_FIXED + cycles::REPORT_PER_BYTE * bytes as u64
    }

    /// Finishes the run: transmits the final report and returns the
    /// total transmission count.
    pub fn finalize(&mut self) -> usize {
        if self.buffered_bytes > 0 || self.transmissions == 0 {
            self.flush();
        }
        self.transmissions
    }
}

impl SecureWorld for TracesWorld {
    fn on_gateway(&mut self, svc: u8, arg: u32, env: &mut SecureEnv<'_>) -> Result<u64, ExecError> {
        let cost = match svc {
            service::LOG_LOOP_COND | service::LOG_RETURN | service::LOG_INDIRECT => self.push(arg),
            // Conditional outcomes are identified by the gateway's own
            // address (one per site).
            service::LOG_COND_OUTCOME => self.push(env.pc),
            other => {
                return Err(ExecError::UnknownService {
                    service: other,
                    pc: env.pc,
                });
            }
        };
        Ok(cost)
    }
}

/// The result of one instrumented run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracesRun {
    /// CPU cycles including all context switches.
    pub cycles: u64,
    /// Instructions retired (instrumented binary).
    pub instrs: u64,
    /// Total `CF_Log` bytes.
    pub cflog_bytes: usize,
    /// Logged events (pre-compression).
    pub events: u64,
    /// Report transmissions.
    pub transmissions: usize,
}

/// Runs an instrumented program to completion.
///
/// `prep` can attach devices or otherwise prepare the machine.
///
/// # Errors
///
/// Propagates execution faults.
pub fn run(
    program: &TracesProgram,
    max_instrs: u64,
    prep: impl FnOnce(&mut Machine),
) -> Result<TracesRun, ExecError> {
    let mut machine = Machine::new(program.image.clone());
    prep(&mut machine);
    let mut world = TracesWorld::new(program.config);
    let outcome = machine.run(&mut world, max_instrs)?;
    let transmissions = world.finalize();
    Ok(TracesRun {
        cycles: outcome.cycles,
        instrs: outcome.instrs,
        cflog_bytes: world.total_bytes,
        events: world.events,
        transmissions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use armv8m_isa::Asm;

    fn sample_module() -> Module {
        let mut a = Asm::new();
        a.func("main");
        a.movi(Reg::R1, 3);
        a.label("loop");
        a.cmpi(Reg::R2, 9);
        a.beq("skip"); // internal conditional → general loop
        a.addi(Reg::R2, Reg::R2, 1);
        a.label("skip");
        a.subi(Reg::R1, Reg::R1, 1);
        a.cmpi(Reg::R1, 0);
        a.bne("loop");
        a.halt();
        a.into_module()
    }

    #[test]
    fn instrumentation_grows_code() {
        let module = sample_module();
        let program = instrument(&module, 0, TracesConfig::default()).expect("instruments");
        assert!(program.size_overhead() > 0);
    }

    #[test]
    fn run_logs_each_tracked_event() {
        let module = sample_module();
        let program = instrument(&module, 0, TracesConfig::default()).expect("instruments");
        let run = run(&program, 100_000, |_| {}).expect("runs");
        // Latch taken twice (3 iterations) + internal conditional never
        // taken (R2 counts 1..3, never 9) → 2 events.
        assert_eq!(run.events, 2);
        assert!(run.cflog_bytes > 0);
        assert_eq!(run.transmissions, 1);
        // Context switches dominate: ≥ 2 × round trip.
        assert!(run.cycles > 2 * cycles::CostModel::default().gateway_round_trip());
    }

    #[test]
    fn rle_compresses_repeated_outcomes() {
        // A tight general loop: the latch logs the same site each
        // iteration, so RLE collapses it to one (word, count) pair.
        let mut a = Asm::new();
        a.func("main");
        a.movi(Reg::R1, 50);
        a.label("loop");
        a.cmpi(Reg::R2, 99);
        a.beq("skip");
        a.addi(Reg::R2, Reg::R2, 1);
        a.label("skip");
        a.subi(Reg::R1, Reg::R1, 1);
        a.cmpi(Reg::R1, 0);
        a.bne("loop");
        a.halt();
        let module = a.into_module();

        let rle = instrument(&module, 0, TracesConfig::default()).unwrap();
        let rle_run = run(&rle, 100_000, |_| {}).unwrap();

        let raw = instrument(
            &module,
            0,
            TracesConfig {
                rle: false,
                ..TracesConfig::default()
            },
        )
        .unwrap();
        let raw_run = run(&raw, 100_000, |_| {}).unwrap();

        assert_eq!(rle_run.events, raw_run.events);
        assert!(
            rle_run.cflog_bytes < raw_run.cflog_bytes / 4,
            "rle {} vs raw {}",
            rle_run.cflog_bytes,
            raw_run.cflog_bytes
        );
    }

    #[test]
    fn instrumentation_preserves_semantics() {
        // The instrumented program computes the same result.
        let module = sample_module();
        let plain_image = module.assemble(0).unwrap();
        let mut plain = Machine::new(plain_image);
        plain
            .run(&mut mcu_sim::NullSecureWorld, 100_000)
            .expect("plain runs");

        let program = instrument(&module, 0, TracesConfig::default()).unwrap();
        let mut machine = Machine::new(program.image.clone());
        let mut world = TracesWorld::new(program.config);
        machine.run(&mut world, 100_000).expect("instrumented runs");

        for r in [Reg::R1, Reg::R2] {
            assert_eq!(machine.cpu.reg(r), plain.cpu.reg(r), "{r}");
        }
    }

    #[test]
    fn pop_return_logging_reads_correct_slot() {
        let mut a = Asm::new();
        a.func("main");
        a.bl("f");
        a.halt();
        a.func("f");
        a.push(&[Reg::R4, Reg::R5, Reg::Lr]);
        a.movi(Reg::R4, 1);
        a.pop(&[Reg::R4, Reg::R5, Reg::Pc]);
        let module = a.into_module();
        let program = instrument(&module, 0, TracesConfig::default()).unwrap();
        let mut machine = Machine::new(program.image.clone());
        let mut world = TracesWorld::new(program.config);
        machine.run(&mut world, 10_000).expect("runs");
        // One return event, logging the correct return address (the
        // instruction after BL f = main base + 4).
        assert_eq!(world.events, 1);
        let logged = world.run[0].0;
        assert_eq!(logged, program.image.symbol("main").unwrap() + 4);
    }

    #[test]
    fn rle_run_boundaries_account_bytes_exactly() {
        let mut world = TracesWorld::new(TracesConfig::default());
        // First record: 4 bytes; extending to a run: +4 once; further
        // extensions: free.
        assert!(world.push(7) > 0);
        assert_eq!(world.total_bytes, 4);
        world.push(7);
        assert_eq!(world.total_bytes, 8);
        world.push(7);
        assert_eq!(world.total_bytes, 8);
        // A different record starts a new 4-byte entry.
        world.push(9);
        assert_eq!(world.total_bytes, 12);
        assert_eq!(world.events, 4);
    }

    #[test]
    fn unknown_service_is_rejected() {
        use mcu_sim::SecureWorld as _;
        let mut world = TracesWorld::new(TracesConfig::default());
        let mut fabric = trace_units::TraceFabric::default();
        let mut env = mcu_sim::SecureEnv {
            fabric: &mut fabric,
            pc: 0x40,
            cycles: 0,
        };
        assert!(matches!(
            world.on_gateway(0xEE, 0, &mut env),
            Err(mcu_sim::ExecError::UnknownService { service: 0xEE, .. })
        ));
    }

    #[test]
    fn finalize_always_reports_at_least_once() {
        let mut world = TracesWorld::new(TracesConfig::default());
        assert_eq!(world.finalize(), 1, "empty session still transmits");
        let mut world = TracesWorld::new(TracesConfig::default());
        world.push(1);
        assert_eq!(world.finalize(), 1);
    }

    #[test]
    fn buffer_fill_forces_transmissions() {
        let mut a = Asm::new();
        a.func("main");
        a.movi(Reg::R1, 200);
        a.label("loop");
        a.cmpi(Reg::R2, 9999);
        a.beq("skip");
        a.addi(Reg::R2, Reg::R2, 1);
        a.label("skip");
        a.subi(Reg::R1, Reg::R1, 1);
        a.cmpi(Reg::R1, 0);
        a.bne("loop");
        a.halt();
        let program = instrument(
            &a.into_module(),
            0,
            TracesConfig {
                rle: false,
                buffer_bytes: 64,
                ..TracesConfig::default()
            },
        )
        .unwrap();
        let run = run(&program, 1_000_000, |_| {}).unwrap();
        assert!(run.transmissions > 5, "got {}", run.transmissions);
    }
}
