//! # cfa-baselines — the comparison systems from the paper's evaluation
//!
//! * [`run_plain`] — the unmodified application, no CFA (Fig. 8's
//!   runtime baseline).
//! * [`run_naive_mtb`] — MTB `TSTARTEN` tracing of the unmodified
//!   binary: zero runtime overhead, enormous `CF_Log` (Fig. 1a/9's
//!   size baseline).
//! * [`instrument`] + [`run`] — a TRACES-style instrumentation-based
//!   CFA: every tracked event is a Secure-World gateway call
//!   (Fig. 1b/8/9/10's state-of-the-art comparison), with
//!   [`TracesConfig::instrumentation_equivalent`] providing the §V-B
//!   "same events, instrumented" variant.
//!
//! All baselines reuse `rap-link`'s branch classification so every
//! system logs a comparable event set; the differences are in capture
//! mechanism and encoding, exactly as in the paper.

#![warn(missing_docs)]

mod naive;
mod traces;

pub use naive::{run_naive_mtb, run_plain, NaiveMtbRun, PlainRun};
pub use traces::{
    instrument, run, InstrumentError, TracesConfig, TracesProgram, TracesRun, TracesWorld,
};

#[cfg(test)]
mod tests {
    use super::*;
    use armv8m_isa::{Asm, Reg};
    use rap_link::{link, LinkOptions};
    use rap_track::{device_key, CfaEngine, Challenge, EngineConfig};

    /// The headline comparison on one synthetic workload: RAP-Track
    /// beats TRACES on runtime while staying close on log size, and
    /// both beat naive MTB on log size.
    #[test]
    fn headline_comparison_shape() {
        let build = |a: &mut Asm| {
            a.func("main");
            a.movi(Reg::R0, 100);
            a.movi(Reg::R1, 0);
            a.label("loop");
            a.cmpi(Reg::R1, 50);
            a.beq("skip");
            a.addi(Reg::R1, Reg::R1, 1);
            a.label("skip");
            a.bl("tick");
            a.subi(Reg::R0, Reg::R0, 1);
            a.cmpi(Reg::R0, 0);
            a.bne("loop");
            a.halt();
            a.func("tick");
            a.addi(Reg::R2, Reg::R2, 1);
            a.ret();
        };
        let mut a = Asm::new();
        build(&mut a);
        let module = a.into_module();
        let plain_image = module.assemble(0).unwrap();

        // Baselines.
        let plain = run_plain(&plain_image, 1_000_000, |_| {}).unwrap();
        let naive = run_naive_mtb(&plain_image, 1_000_000, |_| {}).unwrap();
        let traces_prog = instrument(&module, 0, TracesConfig::default()).unwrap();
        let traces = run(&traces_prog, 1_000_000, |_| {}).unwrap();

        // RAP-Track.
        let linked = link(&module, 0, LinkOptions::default()).unwrap();
        let engine = CfaEngine::new(device_key("cmp"));
        let mut machine = mcu_sim::Machine::new(linked.image.clone());
        let att = engine
            .attest(
                &mut machine,
                &linked.map,
                Challenge::from_seed(0),
                EngineConfig::default(),
            )
            .unwrap();
        let rap_cycles = att.outcome.cycles;
        let rap_log = att.cflog_bytes();

        // Naive MTB: no overhead, biggest log.
        assert_eq!(naive.cycles, plain.cycles);
        assert!(naive.cflog_bytes > rap_log);
        assert!(naive.cflog_bytes > traces.cflog_bytes);

        // TRACES: much slower than both.
        assert!(traces.cycles > naive.cycles);
        assert!(traces.cycles > rap_cycles);

        // RAP-Track: modest overhead over plain.
        assert!(rap_cycles >= plain.cycles);
        let rap_overhead = rap_cycles as f64 / plain.cycles as f64;
        let traces_overhead = traces.cycles as f64 / plain.cycles as f64;
        assert!(
            traces_overhead / rap_overhead > 2.0,
            "TRACES {traces_overhead:.2}× vs RAP {rap_overhead:.2}×"
        );
    }

    /// §V-B: instrumentation logging the exact RAP-Track event set
    /// produces a same-sized log at a much worse runtime.
    #[test]
    fn instrumentation_equivalent_matches_log_but_not_runtime() {
        let mut a = Asm::new();
        a.func("main");
        a.movi(Reg::R0, 60);
        a.movi(Reg::R1, 0);
        a.label("loop");
        a.cmpi(Reg::R1, 30);
        a.beq("skip");
        a.addi(Reg::R1, Reg::R1, 1);
        a.label("skip");
        a.subi(Reg::R0, Reg::R0, 1);
        a.cmpi(Reg::R0, 0);
        a.bne("loop");
        a.halt();
        let module = a.into_module();

        let equiv_prog =
            instrument(&module, 0, TracesConfig::instrumentation_equivalent()).unwrap();
        let equiv = run(&equiv_prog, 1_000_000, |_| {}).unwrap();

        let linked = link(&module, 0, LinkOptions::default()).unwrap();
        let engine = CfaEngine::new(device_key("cmp"));
        let mut machine = mcu_sim::Machine::new(linked.image.clone());
        let att = engine
            .attest(
                &mut machine,
                &linked.map,
                Challenge::from_seed(0),
                EngineConfig::default(),
            )
            .unwrap();

        // Same events → same log size (both 8 bytes/event, no RLE).
        assert_eq!(equiv.cflog_bytes, att.cflog_bytes());
        // But instrumentation pays a context switch per event.
        assert!(equiv.cycles > 2 * att.outcome.cycles);
    }
}
