//! The *naive MTB* baseline (paper §I, Fig. 1) and the plain
//! no-CFA baseline.
//!
//! Naive MTB sets `TSTARTEN` in `MTB_MASTER` and records **every**
//! non-sequential transfer of the unmodified application — no
//! instrumentation, no runtime overhead, but a `CF_Log` that includes
//! all deterministic branches (direct jumps, calls, static loop back
//! edges), 1.9–217× larger than instrumentation-based CFA on the
//! paper's applications.

use armv8m_isa::Image;
use mcu_sim::{ExecError, Machine, NullSecureWorld};
use trace_units::TraceEntry;

/// Result of a plain (no CFA) run — the Fig. 8 runtime baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlainRun {
    /// CPU cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub instrs: u64,
}

/// Runs the unmodified application with no CFA at all.
///
/// # Errors
///
/// Propagates execution faults.
pub fn run_plain(
    image: &Image,
    max_instrs: u64,
    prep: impl FnOnce(&mut Machine),
) -> Result<PlainRun, ExecError> {
    let mut machine = Machine::new(image.clone());
    prep(&mut machine);
    let outcome = machine.run(&mut NullSecureWorld, max_instrs)?;
    Ok(PlainRun {
        cycles: outcome.cycles,
        instrs: outcome.instrs,
    })
}

/// Result of a naive-MTB run.
#[derive(Debug, Clone)]
pub struct NaiveMtbRun {
    /// CPU cycles (identical to the plain baseline: zero overhead).
    pub cycles: u64,
    /// Instructions retired.
    pub instrs: u64,
    /// Total transfers recorded (monotonic, unbounded by the buffer).
    pub entries: u64,
    /// `CF_Log` bytes (`entries × 8`).
    pub cflog_bytes: usize,
    /// Transmissions needed with the prototype's 4 KiB MTB SRAM
    /// (§V-B: the buffer must be drained every 512 packets).
    pub transmissions: usize,
    /// The most recent packets still in the buffer at halt.
    pub tail: Vec<TraceEntry>,
}

/// Runs the unmodified application with the MTB tracing everything.
///
/// # Errors
///
/// Propagates execution faults.
pub fn run_naive_mtb(
    image: &Image,
    max_instrs: u64,
    prep: impl FnOnce(&mut Machine),
) -> Result<NaiveMtbRun, ExecError> {
    let mut machine = Machine::new(image.clone());
    prep(&mut machine);
    machine.fabric.mtb_mut().set_master_trace(true);
    let outcome = machine.run(&mut NullSecureWorld, max_instrs)?;
    let entries = machine.fabric.mtb().total_recorded();
    let cflog_bytes = entries as usize * TraceEntry::BYTES;
    let capacity_bytes = machine.fabric.mtb().config().capacity * TraceEntry::BYTES;
    let transmissions = cflog_bytes.div_ceil(capacity_bytes).max(1);
    Ok(NaiveMtbRun {
        cycles: outcome.cycles,
        instrs: outcome.instrs,
        entries,
        cflog_bytes,
        transmissions,
        tail: machine.fabric.mtb().entries(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use armv8m_isa::{Asm, Reg};

    fn loopy_image() -> Image {
        let mut a = Asm::new();
        a.func("main");
        a.movi(Reg::R0, 100);
        a.label("loop");
        a.bl("tick");
        a.subi(Reg::R0, Reg::R0, 1);
        a.cmpi(Reg::R0, 0);
        a.bne("loop");
        a.halt();
        a.func("tick");
        a.addi(Reg::R1, Reg::R1, 1);
        a.ret();
        a.into_module().assemble(0).unwrap()
    }

    #[test]
    fn naive_mtb_adds_no_cycles() {
        let image = loopy_image();
        let plain = run_plain(&image, 100_000, |_| {}).unwrap();
        let naive = run_naive_mtb(&image, 100_000, |_| {}).unwrap();
        assert_eq!(plain.cycles, naive.cycles);
        assert_eq!(plain.instrs, naive.instrs);
    }

    #[test]
    fn naive_mtb_logs_all_transfer_kinds() {
        let image = loopy_image();
        let naive = run_naive_mtb(&image, 100_000, |_| {}).unwrap();
        // Per iteration: BL (call) + BX LR (return) + BNE taken.
        // 100 calls + 100 returns + 99 taken latches.
        assert_eq!(naive.entries, 100 + 100 + 99);
        assert_eq!(naive.cflog_bytes, 299 * 8);
        // 299 * 8 = 2392 bytes < 4 KiB → one transmission.
        assert_eq!(naive.transmissions, 1);
    }

    #[test]
    fn transmissions_scale_with_log_size() {
        let mut a = Asm::new();
        a.func("main");
        a.movi(Reg::R0, 2000);
        a.label("loop");
        a.subi(Reg::R0, Reg::R0, 1);
        a.cmpi(Reg::R0, 0);
        a.bne("loop");
        a.halt();
        let image = a.into_module().assemble(0).unwrap();
        let naive = run_naive_mtb(&image, 100_000, |_| {}).unwrap();
        assert_eq!(naive.entries, 1999);
        // 1999 × 8 = 15992 bytes over a 4096-byte buffer → 4 drains.
        assert_eq!(naive.transmissions, 4);
    }
}
