//! Text-assembly parser: the inverse of the `Display` implementations.
//!
//! Accepts the syntax the disassembler emits plus labels and
//! directives, so `.tasm` files round-trip through the toolchain:
//!
//! ```text
//! .func main
//!     movw r0, #10
//! loop:
//!     subs r0, r0, #1
//!     cmp r0, #0
//!     bne loop
//!     halt
//! ```
//!
//! Comments start with `;`, `#` (at line start or after whitespace) or
//! `//`. Directives: `.func NAME` (function entry) and
//! `.loadaddr rX, TARGET` (the `LoadAddr` pseudo).

use std::fmt;

use crate::{Cond, Instr, Item, Module, Reg, RegList, Target};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a whole text-assembly module.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn parse_module(source: &str) -> Result<Module, ParseError> {
    let mut items = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".func") {
            let name = rest.trim();
            if name.is_empty() || !is_ident(name) {
                return Err(err(line_no, format!("bad function name `{name}`")));
            }
            items.push(Item::Func(name.to_owned()));
        } else if let Some(rest) = line.strip_prefix(".loadaddr") {
            let (rd, target) = parse_loadaddr(rest, line_no)?;
            items.push(Item::LoadAddr { rd, target });
        } else if let Some(name) = line.strip_suffix(':') {
            let name = name.trim();
            if !is_ident(name) {
                return Err(err(line_no, format!("bad label `{name}`")));
            }
            items.push(Item::Label(name.to_owned()));
        } else {
            items.push(Item::Instr(parse_instr(line, line_no)?));
        }
    }
    Ok(Module { items })
}

/// Parses a single instruction line (no label/directive).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the malformed token; the stored
/// line number is the one supplied by the caller.
pub fn parse_instr(line: &str, line_no: usize) -> Result<Instr, ParseError> {
    let line = strip_comment(line).trim();
    let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let mnemonic = mnemonic.to_ascii_lowercase();

    let ops = || -> Result<Vec<String>, ParseError> { split_operands(rest, line_no) };

    let instr = match mnemonic.as_str() {
        "nop" => Instr::Nop,
        "halt" => Instr::Halt,
        "movw" => {
            let o = ops()?;
            expect_len(&o, 2, line_no)?;
            Instr::MovImm {
                rd: reg(&o[0], line_no)?,
                imm: imm16(&o[1], line_no)?,
            }
        }
        "movt" => {
            let o = ops()?;
            expect_len(&o, 2, line_no)?;
            Instr::MovTop {
                rd: reg(&o[0], line_no)?,
                imm: imm16(&o[1], line_no)?,
            }
        }
        "mov" => {
            let o = ops()?;
            expect_len(&o, 2, line_no)?;
            Instr::MovReg {
                rd: reg(&o[0], line_no)?,
                rm: reg(&o[1], line_no)?,
            }
        }
        "adds" | "subs" => {
            let o = ops()?;
            expect_len(&o, 3, line_no)?;
            let rd = reg(&o[0], line_no)?;
            let rn = reg(&o[1], line_no)?;
            if o[2].starts_with('#') {
                let imm = imm16(&o[2], line_no)?;
                if mnemonic == "adds" {
                    Instr::AddImm { rd, rn, imm }
                } else {
                    Instr::SubImm { rd, rn, imm }
                }
            } else {
                let rm = reg(&o[2], line_no)?;
                if mnemonic == "adds" {
                    Instr::AddReg { rd, rn, rm }
                } else {
                    Instr::SubReg { rd, rn, rm }
                }
            }
        }
        "muls" | "udiv" | "ands" | "orrs" | "eors" => {
            let o = ops()?;
            expect_len(&o, 3, line_no)?;
            let rd = reg(&o[0], line_no)?;
            let rn = reg(&o[1], line_no)?;
            let rm = reg(&o[2], line_no)?;
            match mnemonic.as_str() {
                "muls" => Instr::MulReg { rd, rn, rm },
                "udiv" => Instr::UdivReg { rd, rn, rm },
                "ands" => Instr::AndReg { rd, rn, rm },
                "orrs" => Instr::OrrReg { rd, rn, rm },
                _ => Instr::EorReg { rd, rn, rm },
            }
        }
        "lsls" | "lsrs" | "asrs" => {
            let o = ops()?;
            expect_len(&o, 3, line_no)?;
            let rd = reg(&o[0], line_no)?;
            let rm = reg(&o[1], line_no)?;
            let shift = imm16(&o[2], line_no)?;
            if shift >= 32 {
                return Err(err(line_no, "shift amount must be < 32"));
            }
            let shift = shift as u8;
            match mnemonic.as_str() {
                "lsls" => Instr::LslImm { rd, rm, shift },
                "lsrs" => Instr::LsrImm { rd, rm, shift },
                _ => Instr::AsrImm { rd, rm, shift },
            }
        }
        "cmp" => {
            let o = ops()?;
            expect_len(&o, 2, line_no)?;
            let rn = reg(&o[0], line_no)?;
            if o[1].starts_with('#') {
                Instr::CmpImm {
                    rn,
                    imm: imm16(&o[1], line_no)?,
                }
            } else {
                Instr::CmpReg {
                    rn,
                    rm: reg(&o[1], line_no)?,
                }
            }
        }
        "ldr" | "str" | "ldrb" | "strb" => {
            let (rt_str, mem) = rest
                .split_once(',')
                .ok_or_else(|| err(line_no, "expected `rt, [..]`"))?;
            let rt = reg(rt_str.trim(), line_no)?;
            let mem = parse_mem(mem.trim(), line_no)?;
            match (mnemonic.as_str(), mem) {
                ("ldr", Mem::Imm(rn, offset)) => Instr::LdrImm { rt, rn, offset },
                ("ldr", Mem::Reg(rn, rm)) => Instr::LdrReg { rt, rn, rm },
                ("str", Mem::Imm(rn, offset)) => Instr::StrImm { rt, rn, offset },
                ("ldrb", Mem::Imm(rn, offset)) => Instr::LdrbImm { rt, rn, offset },
                ("ldrb", Mem::Reg(rn, rm)) => Instr::LdrbReg { rt, rn, rm },
                ("strb", Mem::Imm(rn, offset)) => Instr::StrbImm { rt, rn, offset },
                (m, _) => {
                    return Err(err(
                        line_no,
                        format!("`{m}` does not support this addressing form"),
                    ));
                }
            }
        }
        "push" | "pop" => {
            let list = parse_reglist(rest, line_no)?;
            if mnemonic == "push" {
                Instr::Push { list }
            } else {
                Instr::Pop { list }
            }
        }
        "bl" => Instr::Bl {
            target: parse_target(rest, line_no)?,
        },
        "blx" => Instr::Blx {
            rm: reg(rest, line_no)?,
        },
        "bx" => Instr::Bx {
            rm: reg(rest, line_no)?,
        },
        "b" => Instr::B {
            target: parse_target(rest, line_no)?,
        },
        "sg" => {
            let o = ops()?;
            expect_len(&o, 2, line_no)?;
            let service = imm16(&o[0], line_no)?;
            if service > 255 {
                return Err(err(line_no, "service id must fit in a byte"));
            }
            Instr::SecureGateway {
                service: service as u8,
                arg: reg(&o[1], line_no)?,
            }
        }
        other => {
            // Conditional branches: b<cond>.
            if let Some(cond_str) = other.strip_prefix('b') {
                if let Some(cond) = cond_from_str(cond_str) {
                    return Ok(Instr::BCond {
                        cond,
                        target: parse_target(rest, line_no)?,
                    });
                }
            }
            return Err(err(line_no, format!("unknown mnemonic `{other}`")));
        }
    };
    Ok(instr)
}

fn strip_comment(line: &str) -> &str {
    // `#` only starts a comment at the line start (it is the immediate
    // sigil elsewhere).
    if line.trim_start().starts_with('#') {
        return "";
    }
    let mut cut = line.len();
    for pat in [";", "//"] {
        if let Some(p) = line.find(pat) {
            cut = cut.min(p);
        }
    }
    &line[..cut]
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !s.chars().next().unwrap().is_ascii_digit()
}

fn split_operands(rest: &str, line_no: usize) -> Result<Vec<String>, ParseError> {
    if rest.is_empty() {
        return Err(err(line_no, "missing operands"));
    }
    Ok(rest.split(',').map(|s| s.trim().to_owned()).collect())
}

fn expect_len(ops: &[String], n: usize, line_no: usize) -> Result<(), ParseError> {
    if ops.len() != n {
        return Err(err(
            line_no,
            format!("expected {n} operands, found {}", ops.len()),
        ));
    }
    Ok(())
}

fn reg(token: &str, line_no: usize) -> Result<Reg, ParseError> {
    let t = token.trim().to_ascii_lowercase();
    match t.as_str() {
        "sp" => return Ok(Reg::Sp),
        "lr" => return Ok(Reg::Lr),
        "pc" => return Ok(Reg::Pc),
        _ => {}
    }
    if let Some(num) = t.strip_prefix('r') {
        if let Ok(i) = num.parse::<u8>() {
            if let Some(r) = Reg::from_index(i) {
                return Ok(r);
            }
        }
    }
    Err(err(line_no, format!("bad register `{token}`")))
}

fn number(token: &str, line_no: usize) -> Result<u32, ParseError> {
    let t = token.trim();
    let parsed = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16)
    } else {
        t.parse::<u32>()
    };
    parsed.map_err(|_| err(line_no, format!("bad number `{token}`")))
}

fn imm16(token: &str, line_no: usize) -> Result<u16, ParseError> {
    let t = token.trim();
    let t = t.strip_prefix('#').unwrap_or(t);
    let v = number(t, line_no)?;
    u16::try_from(v).map_err(|_| err(line_no, format!("immediate `{token}` exceeds 16 bits")))
}

enum Mem {
    Imm(Reg, u16),
    Reg(Reg, Reg),
}

fn parse_mem(token: &str, line_no: usize) -> Result<Mem, ParseError> {
    let inner = token
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line_no, format!("bad memory operand `{token}`")))?;
    let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
    match parts.as_slice() {
        [rn] => Ok(Mem::Imm(reg(rn, line_no)?, 0)),
        [rn, off] if off.starts_with('#') => Ok(Mem::Imm(reg(rn, line_no)?, imm16(off, line_no)?)),
        [rn, rm] => Ok(Mem::Reg(reg(rn, line_no)?, reg(rm, line_no)?)),
        [rn, rm, lsl] if lsl.to_ascii_lowercase().starts_with("lsl") => {
            Ok(Mem::Reg(reg(rn, line_no)?, reg(rm, line_no)?))
        }
        _ => Err(err(line_no, format!("bad memory operand `{token}`"))),
    }
}

fn parse_reglist(token: &str, line_no: usize) -> Result<RegList, ParseError> {
    let inner = token
        .trim()
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| err(line_no, format!("bad register list `{token}`")))?;
    let mut list = RegList::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        // Ranges like r4-r7.
        if let Some((lo, hi)) = part.split_once('-') {
            let lo = reg(lo, line_no)?;
            let hi = reg(hi, line_no)?;
            if lo.index() > hi.index() {
                return Err(err(line_no, format!("bad register range `{part}`")));
            }
            for i in lo.index()..=hi.index() {
                list = list.with(Reg::from_index(i).expect("bounded"));
            }
        } else {
            list = list.with(reg(part, line_no)?);
        }
    }
    Ok(list)
}

fn parse_target(token: &str, line_no: usize) -> Result<Target, ParseError> {
    let t = token.trim();
    if t.is_empty() {
        return Err(err(line_no, "missing branch target"));
    }
    if t.starts_with("0x") || t.starts_with("0X") || t.chars().all(|c| c.is_ascii_digit()) {
        Ok(Target::Abs(number(t, line_no)?))
    } else if is_ident(t) {
        Ok(Target::label(t))
    } else {
        Err(err(line_no, format!("bad branch target `{t}`")))
    }
}

fn parse_loadaddr(rest: &str, line_no: usize) -> Result<(Reg, Target), ParseError> {
    let (rd, target) = rest
        .split_once(',')
        .ok_or_else(|| err(line_no, "expected `.loadaddr rX, TARGET`"))?;
    Ok((reg(rd, line_no)?, parse_target(target, line_no)?))
}

fn cond_from_str(s: &str) -> Option<Cond> {
    Some(match s {
        "eq" => Cond::Eq,
        "ne" => Cond::Ne,
        "cs" => Cond::Cs,
        "cc" => Cond::Cc,
        "mi" => Cond::Mi,
        "pl" => Cond::Pl,
        "vs" => Cond::Vs,
        "vc" => Cond::Vc,
        "hi" => Cond::Hi,
        "ls" => Cond::Ls,
        "ge" => Cond::Ge,
        "lt" => Cond::Lt,
        "gt" => Cond::Gt,
        "le" => Cond::Le,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_whole_program() {
        let src = r"
; a comment
.func main
    movw r0, #10
loop:
    subs r0, r0, #1   ; decrement
    cmp r0, #0
    bne loop
    bl helper
    halt
.func helper
    push {r4, lr}
    .loadaddr r3, main
    pop {r4, pc}
";
        let module = parse_module(src).expect("parses");
        let image = module.assemble(0).expect("assembles");
        assert!(image.symbol("main").is_some());
        assert!(image.symbol("loop").is_some());
        assert!(image.symbol("helper").is_some());
    }

    #[test]
    fn display_parse_roundtrip() {
        use crate::{Asm, Reg};
        let mut a = Asm::new();
        a.movi(Reg::R0, 300);
        a.movt(Reg::R1, 0x2000);
        a.mov(Reg::R8, Reg::Sp);
        a.addi(Reg::R2, Reg::R3, 4);
        a.add(Reg::R2, Reg::R3, Reg::R4);
        a.subi(Reg::Sp, Reg::Sp, 16);
        a.mul(Reg::R1, Reg::R1, Reg::R2);
        a.udiv(Reg::R0, Reg::R1, Reg::R2);
        a.and(Reg::R0, Reg::R0, Reg::R1);
        a.orr(Reg::R0, Reg::R0, Reg::R1);
        a.eor(Reg::R0, Reg::R0, Reg::R1);
        a.lsl(Reg::R0, Reg::R1, 2);
        a.lsr(Reg::R0, Reg::R1, 31);
        a.asr(Reg::R7, Reg::R7, 8);
        a.cmpi(Reg::R0, 1000);
        a.cmp(Reg::R4, Reg::R5);
        a.ldr(Reg::R0, Reg::R1, 8);
        a.ldr_idx(Reg::R0, Reg::R1, Reg::R2);
        a.str_(Reg::R0, Reg::Sp, 4);
        a.ldrb(Reg::R3, Reg::R4, 1);
        a.ldrb_idx(Reg::R3, Reg::R4, Reg::R5);
        a.strb(Reg::R3, Reg::R4, 255);
        a.push(&[Reg::R4, Reg::R5, Reg::Lr]);
        a.pop(&[Reg::R4, Reg::R5, Reg::Pc]);
        a.blx(Reg::R3);
        a.bx(Reg::Lr);
        a.nop();
        a.sg(2, Reg::R2);
        a.halt();
        let module = a.into_module();
        for item in &module.items {
            let Item::Instr(instr) = item else { continue };
            let text = instr.to_string();
            let parsed =
                parse_instr(&text, 1).unwrap_or_else(|e| panic!("`{text}` fails to parse: {e}"));
            assert_eq!(&parsed, instr, "`{text}`");
        }
    }

    #[test]
    fn branch_targets_parse_both_ways() {
        assert_eq!(
            parse_instr("b somewhere", 1).unwrap(),
            Instr::B {
                target: Target::label("somewhere")
            }
        );
        assert_eq!(
            parse_instr("beq 0x100", 1).unwrap(),
            Instr::BCond {
                cond: Cond::Eq,
                target: Target::Abs(0x100)
            }
        );
        assert_eq!(
            parse_instr("bl 256", 1).unwrap(),
            Instr::Bl {
                target: Target::Abs(256)
            }
        );
    }

    #[test]
    fn register_ranges_in_lists() {
        let i = parse_instr("push {r4-r7, lr}", 1).unwrap();
        let Instr::Push { list } = i else {
            panic!("not a push")
        };
        for r in [Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::Lr] {
            assert!(list.contains(r));
        }
        assert_eq!(list.len(), 5);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_module(".func main\n  bogus r0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = parse_module("movw r99, #1").unwrap_err();
        assert!(e.message.contains("r99"));

        let e = parse_module("cmp r0, #99999999").unwrap_err();
        assert!(e.message.contains("16 bits"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let m = parse_module("; x\n\n// y\n# z\n nop ; trailing\n").unwrap();
        assert_eq!(m.items.len(), 1);
    }

    #[test]
    fn disassembly_of_real_image_reparses() {
        use crate::{Asm, Reg};
        let mut a = Asm::new();
        a.func("main");
        a.movi(Reg::R0, 3);
        a.label("l");
        a.subi(Reg::R0, Reg::R0, 1);
        a.bne("l");
        a.halt();
        let image = a.into_module().assemble(0).unwrap();
        // Each disassembled instruction line reparses (with absolute
        // targets).
        for (_, instr) in image.instrs() {
            let text = instr.to_string();
            let reparsed = parse_instr(&text, 1).unwrap_or_else(|e| panic!("`{text}`: {e}"));
            assert_eq!(&reparsed, instr);
        }
    }
}
