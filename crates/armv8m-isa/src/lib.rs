//! # armv8m-isa — the T-lite instruction set
//!
//! A compact, Thumb-like subset of the ARMv8-M instruction set used by the
//! RAP-Track reproduction: instruction types, binary encoding/decoding,
//! a label-resolving two-pass assembler, and executable [`Image`]s.
//!
//! The design goal is *architectural fidelity where the paper needs it*:
//! narrow/wide (2/4-byte) instruction sizing, `LR`/`PC` calling
//! conventions, flag-setting arithmetic and the full branch taxonomy
//! (direct, conditional, indirect call, `POP {…, PC}` returns, `LDR PC`
//! jumps) that RAP-Track's offline phase classifies.
//!
//! ```
//! use armv8m_isa::{Asm, Reg};
//!
//! let mut a = Asm::new();
//! a.func("main");
//! a.movi(Reg::R0, 10);
//! a.label("loop");
//! a.subi(Reg::R0, Reg::R0, 1);
//! a.bne("loop");
//! a.halt();
//!
//! let image = a.into_module().assemble(0x0)?;
//! assert!(image.instr_at(0x0).is_some());
//! println!("{}", image.disassemble());
//! # Ok::<(), armv8m_isa::AsmError>(())
//! ```

#![warn(missing_docs)]

mod asm;
mod cond;
mod encode;
mod error;
mod image;
mod instr;
mod parse;
mod reg;

pub use asm::{Asm, Item, Module};
pub use cond::{Cond, Flags};
pub use encode::{decode, encode};
pub use error::{AsmError, DecodeError, EncodeError};
pub use image::Image;
pub use instr::{service, BranchKind, Instr, Target};
pub use parse::{parse_instr, parse_module, ParseError};
pub use reg::{Reg, RegList};
