//! The T-lite instruction set: a compact, Thumb-like subset of ARMv8-M.
//!
//! Every instruction is 2 or 4 bytes long, mirroring the narrow/wide split
//! of real Thumb-2 so that code-size experiments keep their shape. The
//! semantic model (flag behaviour, `LR`/`PC` conventions, `PUSH`/`POP`
//! ordering) follows the architecture closely enough that the paper's
//! branch taxonomy — deterministic vs. non-deterministic transfers — maps
//! one-to-one onto [`BranchKind`].

use std::fmt;

use crate::{Cond, Reg, RegList};

/// A branch target: either a symbolic label (before assembly) or an
/// absolute address (after assembly / when decoded from a binary).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Target {
    /// A symbolic label to be resolved by the assembler.
    Label(String),
    /// An absolute byte address in the code image.
    Abs(u32),
}

impl Target {
    /// Convenience constructor for a label target.
    pub fn label(name: impl Into<String>) -> Target {
        Target::Label(name.into())
    }

    /// Returns the absolute address, if resolved.
    pub fn abs(&self) -> Option<u32> {
        match self {
            Target::Abs(a) => Some(*a),
            Target::Label(_) => None,
        }
    }
}

impl From<u32> for Target {
    fn from(addr: u32) -> Target {
        Target::Abs(addr)
    }
}

impl From<&str> for Target {
    fn from(name: &str) -> Target {
        Target::Label(name.to_owned())
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Label(name) => write!(f, "{name}"),
            Target::Abs(addr) => write!(f, "{addr:#010x}"),
        }
    }
}

/// Secure-gateway service identifiers understood by the (modelled)
/// Secure-World runtime. The attested application requests these via
/// [`Instr::SecureGateway`]; each call costs a full Non-Secure → Secure
/// context switch in the cycle model.
pub mod service {
    /// TRACES-style: append a control-flow destination to `CF_Log`.
    pub const LOG_BRANCH: u8 = 1;
    /// RAP-Track §IV-D: log a simple loop's condition register once,
    /// before loop entry.
    pub const LOG_LOOP_COND: u8 = 2;
    /// TRACES-style: log a conditional-branch outcome.
    pub const LOG_COND_OUTCOME: u8 = 3;
    /// TRACES-style: log a function return target.
    pub const LOG_RETURN: u8 = 4;
    /// TRACES-style: log an indirect call/jump target.
    pub const LOG_INDIRECT: u8 = 5;
}

/// A single T-lite instruction.
///
/// Arithmetic instructions update the APSR flags (like the flag-setting
/// narrow Thumb encodings); `MOV`/`MOVT` and memory operations do not.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field names (rd/rn/rm/imm…) follow the ARM ARM
pub enum Instr {
    /// `MOVW rd, #imm16` — loads a zero-extended 16-bit immediate.
    MovImm { rd: Reg, imm: u16 },
    /// `MOVT rd, #imm16` — writes the top halfword, keeping the bottom.
    MovTop { rd: Reg, imm: u16 },
    /// `MOV rd, rm`.
    MovReg { rd: Reg, rm: Reg },
    /// `ADDS rd, rn, #imm` (flag-setting).
    AddImm { rd: Reg, rn: Reg, imm: u16 },
    /// `ADDS rd, rn, rm` (flag-setting).
    AddReg { rd: Reg, rn: Reg, rm: Reg },
    /// `SUBS rd, rn, #imm` (flag-setting).
    SubImm { rd: Reg, rn: Reg, imm: u16 },
    /// `SUBS rd, rn, rm` (flag-setting).
    SubReg { rd: Reg, rn: Reg, rm: Reg },
    /// `MULS rd, rn, rm` (flag-setting, low 32 bits).
    MulReg { rd: Reg, rn: Reg, rm: Reg },
    /// `UDIV rd, rn, rm` — unsigned divide; division by zero yields 0
    /// (ARMv8-M `DIV_0_TRP` clear behaviour). Does not set flags.
    UdivReg { rd: Reg, rn: Reg, rm: Reg },
    /// `ANDS rd, rn, rm` (flag-setting, logical).
    AndReg { rd: Reg, rn: Reg, rm: Reg },
    /// `ORRS rd, rn, rm` (flag-setting, logical).
    OrrReg { rd: Reg, rn: Reg, rm: Reg },
    /// `EORS rd, rn, rm` (flag-setting, logical).
    EorReg { rd: Reg, rn: Reg, rm: Reg },
    /// `LSLS rd, rm, #shift` (flag-setting, logical).
    LslImm { rd: Reg, rm: Reg, shift: u8 },
    /// `LSRS rd, rm, #shift` (flag-setting, logical).
    LsrImm { rd: Reg, rm: Reg, shift: u8 },
    /// `ASRS rd, rm, #shift` (flag-setting, logical).
    AsrImm { rd: Reg, rm: Reg, shift: u8 },
    /// `CMP rn, #imm` — compare against an immediate.
    CmpImm { rn: Reg, imm: u16 },
    /// `CMP rn, rm`.
    CmpReg { rn: Reg, rm: Reg },
    /// `LDR rt, [rn, #offset]` — word load. With `rt == PC` this is an
    /// indirect jump ("LDR into PC"), one of the monitored return/jump
    /// forms of the paper (§IV-C.2).
    LdrImm { rt: Reg, rn: Reg, offset: u16 },
    /// `LDR rt, [rn, rm, LSL #2]` — word load with register index
    /// (jump tables, array access). `rt == PC` is an indirect jump.
    LdrReg { rt: Reg, rn: Reg, rm: Reg },
    /// `STR rt, [rn, #offset]` — word store.
    StrImm { rt: Reg, rn: Reg, offset: u16 },
    /// `LDRB rt, [rn, #offset]` — byte load (zero-extended).
    LdrbImm { rt: Reg, rn: Reg, offset: u16 },
    /// `LDRB rt, [rn, rm]` — byte load with register index.
    LdrbReg { rt: Reg, rn: Reg, rm: Reg },
    /// `STRB rt, [rn, #offset]` — byte store.
    StrbImm { rt: Reg, rn: Reg, offset: u16 },
    /// `PUSH {list}` — may include `LR`. Decrements `SP` by `4 × n`.
    Push { list: RegList },
    /// `POP {list}` — may include `PC`, in which case it is a
    /// non-deterministic return (§IV-C.2).
    Pop { list: RegList },
    /// `B target` — unconditional direct branch (deterministic).
    B { target: Target },
    /// `B<cond> target` — conditional branch (non-deterministic).
    BCond { cond: Cond, target: Target },
    /// `BL target` — direct call; sets `LR` to the following instruction.
    Bl { target: Target },
    /// `BLX rm` — indirect call through a register (non-deterministic).
    Blx { rm: Reg },
    /// `BX rm` — indirect branch; `BX LR` is the plain return form.
    Bx { rm: Reg },
    /// `NOP`.
    Nop,
    /// Secure-gateway call: transfers to the Secure World service
    /// `service` with the value of register `arg` as its argument.
    ///
    /// Models a `BL` through an NSC veneer; the cycle model charges the
    /// full context-switch cost (see `mcu_sim::cycles`).
    SecureGateway { service: u8, arg: Reg },
    /// `BKPT`-like terminator: ends simulation of the attested program.
    Halt,
}

/// Control-flow classification of an instruction, aligned with the
/// paper's branch taxonomy (§IV-B/§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Not a control-flow transfer.
    None,
    /// `B` — direct, statically deterministic.
    Direct,
    /// `B<cond>` — two statically known outcomes, runtime-selected.
    Conditional,
    /// `BL` — direct call; target deterministic, pushes return address
    /// semantics into `LR`.
    DirectCall,
    /// `BLX rm` — indirect call (monitored).
    IndirectCall,
    /// `BX rm`, `rm != LR` — indirect jump through a register.
    IndirectJump,
    /// `BX LR` — return through the link register.
    ReturnBx,
    /// `POP {..., PC}` — return through the stack (monitored).
    ReturnPop,
    /// `LDR PC, [...]` — indirect jump through memory (monitored).
    LoadJump,
    /// A secure-gateway call (control transfers to the Secure World and
    /// back; modelled, not traced by the MTB).
    Gateway,
    /// Simulation terminator.
    Halt,
}

impl BranchKind {
    /// Whether the transfer may change `PC` non-sequentially.
    pub fn is_branch(self) -> bool {
        !matches!(self, BranchKind::None | BranchKind::Gateway)
    }
}

impl Instr {
    /// Encoded size in bytes (2 for narrow forms, 4 for wide), mirroring
    /// the Thumb-2 narrow/wide split.
    pub fn size(&self) -> u32 {
        match self {
            Instr::MovReg { .. }
            | Instr::AddReg { .. }
            | Instr::SubReg { .. }
            | Instr::MulReg { .. }
            | Instr::AndReg { .. }
            | Instr::OrrReg { .. }
            | Instr::EorReg { .. }
            | Instr::LslImm { .. }
            | Instr::LsrImm { .. }
            | Instr::AsrImm { .. }
            | Instr::CmpReg { .. }
            | Instr::LdrReg { .. }
            | Instr::LdrbReg { .. }
            | Instr::Push { .. }
            | Instr::Pop { .. }
            | Instr::Blx { .. }
            | Instr::Bx { .. }
            | Instr::Nop
            | Instr::Halt => 2,
            Instr::CmpImm { rn, imm } => {
                if rn.is_low() && *imm < 256 {
                    2
                } else {
                    4
                }
            }
            Instr::AddImm { imm, .. } | Instr::SubImm { imm, .. } => {
                if *imm < 8 {
                    2
                } else {
                    4
                }
            }
            Instr::MovImm { rd, imm } => {
                if rd.is_low() && *imm < 256 {
                    2
                } else {
                    4
                }
            }
            Instr::MovTop { .. }
            | Instr::UdivReg { .. }
            | Instr::LdrImm { .. }
            | Instr::StrImm { .. }
            | Instr::LdrbImm { .. }
            | Instr::StrbImm { .. }
            | Instr::B { .. }
            | Instr::BCond { .. }
            | Instr::Bl { .. }
            | Instr::SecureGateway { .. } => 4,
        }
    }

    /// The control-flow class of this instruction.
    pub fn branch_kind(&self) -> BranchKind {
        match self {
            Instr::B { .. } => BranchKind::Direct,
            Instr::BCond { .. } => BranchKind::Conditional,
            Instr::Bl { .. } => BranchKind::DirectCall,
            Instr::Blx { .. } => BranchKind::IndirectCall,
            Instr::Bx { rm } => {
                if *rm == Reg::Lr {
                    BranchKind::ReturnBx
                } else {
                    BranchKind::IndirectJump
                }
            }
            Instr::Pop { list } if list.contains(Reg::Pc) => BranchKind::ReturnPop,
            Instr::LdrImm { rt, .. } | Instr::LdrReg { rt, .. } if *rt == Reg::Pc => {
                BranchKind::LoadJump
            }
            Instr::SecureGateway { .. } => BranchKind::Gateway,
            Instr::Halt => BranchKind::Halt,
            _ => BranchKind::None,
        }
    }

    /// The symbolic/absolute target of a direct transfer, if any.
    pub fn target(&self) -> Option<&Target> {
        match self {
            Instr::B { target } | Instr::BCond { target, .. } | Instr::Bl { target } => {
                Some(target)
            }
            _ => None,
        }
    }

    /// Mutable access to the direct-transfer target, if any. Used by the
    /// offline linker to retarget branches at trampolines.
    pub fn target_mut(&mut self) -> Option<&mut Target> {
        match self {
            Instr::B { target } | Instr::BCond { target, .. } | Instr::Bl { target } => {
                Some(target)
            }
            _ => None,
        }
    }

    /// Whether this instruction can fall through to its successor.
    ///
    /// `B`, `BX`, `POP {…, PC}`, `LDR PC` and `HALT` never do; calls and
    /// conditional branches do.
    pub fn falls_through(&self) -> bool {
        !matches!(
            self.branch_kind(),
            BranchKind::Direct
                | BranchKind::IndirectJump
                | BranchKind::ReturnBx
                | BranchKind::ReturnPop
                | BranchKind::LoadJump
                | BranchKind::Halt
        )
    }

    /// Whether the instruction writes to APSR condition flags.
    pub fn sets_flags(&self) -> bool {
        matches!(
            self,
            Instr::AddImm { .. }
                | Instr::AddReg { .. }
                | Instr::SubImm { .. }
                | Instr::SubReg { .. }
                | Instr::MulReg { .. }
                | Instr::AndReg { .. }
                | Instr::OrrReg { .. }
                | Instr::EorReg { .. }
                | Instr::LslImm { .. }
                | Instr::LsrImm { .. }
                | Instr::AsrImm { .. }
                | Instr::CmpImm { .. }
                | Instr::CmpReg { .. }
        )
    }

    /// Whether this instruction reads or writes data memory.
    pub fn accesses_memory(&self) -> bool {
        matches!(
            self,
            Instr::LdrImm { .. }
                | Instr::LdrReg { .. }
                | Instr::StrImm { .. }
                | Instr::LdrbImm { .. }
                | Instr::LdrbReg { .. }
                | Instr::StrbImm { .. }
                | Instr::Push { .. }
                | Instr::Pop { .. }
        )
    }

    /// The destination register written by the instruction, if it is a
    /// plain data-processing or load operation (used by the linker's
    /// simple-loop analysis).
    pub fn dest_reg(&self) -> Option<Reg> {
        match self {
            Instr::MovImm { rd, .. }
            | Instr::MovTop { rd, .. }
            | Instr::MovReg { rd, .. }
            | Instr::AddImm { rd, .. }
            | Instr::AddReg { rd, .. }
            | Instr::SubImm { rd, .. }
            | Instr::SubReg { rd, .. }
            | Instr::MulReg { rd, .. }
            | Instr::UdivReg { rd, .. }
            | Instr::AndReg { rd, .. }
            | Instr::OrrReg { rd, .. }
            | Instr::EorReg { rd, .. }
            | Instr::LslImm { rd, .. }
            | Instr::LsrImm { rd, .. }
            | Instr::AsrImm { rd, .. } => Some(*rd),
            Instr::LdrImm { rt, .. }
            | Instr::LdrReg { rt, .. }
            | Instr::LdrbImm { rt, .. }
            | Instr::LdrbReg { rt, .. } => Some(*rt),
            _ => None,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::MovImm { rd, imm } => write!(f, "movw {rd}, #{imm}"),
            Instr::MovTop { rd, imm } => write!(f, "movt {rd}, #{imm}"),
            Instr::MovReg { rd, rm } => write!(f, "mov {rd}, {rm}"),
            Instr::AddImm { rd, rn, imm } => write!(f, "adds {rd}, {rn}, #{imm}"),
            Instr::AddReg { rd, rn, rm } => write!(f, "adds {rd}, {rn}, {rm}"),
            Instr::SubImm { rd, rn, imm } => write!(f, "subs {rd}, {rn}, #{imm}"),
            Instr::SubReg { rd, rn, rm } => write!(f, "subs {rd}, {rn}, {rm}"),
            Instr::MulReg { rd, rn, rm } => write!(f, "muls {rd}, {rn}, {rm}"),
            Instr::UdivReg { rd, rn, rm } => write!(f, "udiv {rd}, {rn}, {rm}"),
            Instr::AndReg { rd, rn, rm } => write!(f, "ands {rd}, {rn}, {rm}"),
            Instr::OrrReg { rd, rn, rm } => write!(f, "orrs {rd}, {rn}, {rm}"),
            Instr::EorReg { rd, rn, rm } => write!(f, "eors {rd}, {rn}, {rm}"),
            Instr::LslImm { rd, rm, shift } => write!(f, "lsls {rd}, {rm}, #{shift}"),
            Instr::LsrImm { rd, rm, shift } => write!(f, "lsrs {rd}, {rm}, #{shift}"),
            Instr::AsrImm { rd, rm, shift } => write!(f, "asrs {rd}, {rm}, #{shift}"),
            Instr::CmpImm { rn, imm } => write!(f, "cmp {rn}, #{imm}"),
            Instr::CmpReg { rn, rm } => write!(f, "cmp {rn}, {rm}"),
            Instr::LdrImm { rt, rn, offset } => write!(f, "ldr {rt}, [{rn}, #{offset}]"),
            Instr::LdrReg { rt, rn, rm } => write!(f, "ldr {rt}, [{rn}, {rm}, lsl #2]"),
            Instr::StrImm { rt, rn, offset } => write!(f, "str {rt}, [{rn}, #{offset}]"),
            Instr::LdrbImm { rt, rn, offset } => write!(f, "ldrb {rt}, [{rn}, #{offset}]"),
            Instr::LdrbReg { rt, rn, rm } => write!(f, "ldrb {rt}, [{rn}, {rm}]"),
            Instr::StrbImm { rt, rn, offset } => write!(f, "strb {rt}, [{rn}, #{offset}]"),
            Instr::Push { list } => write!(f, "push {list}"),
            Instr::Pop { list } => write!(f, "pop {list}"),
            Instr::B { target } => write!(f, "b {target}"),
            Instr::BCond { cond, target } => write!(f, "b{cond} {target}"),
            Instr::Bl { target } => write!(f, "bl {target}"),
            Instr::Blx { rm } => write!(f, "blx {rm}"),
            Instr::Bx { rm } => write!(f, "bx {rm}"),
            Instr::Nop => write!(f, "nop"),
            Instr::SecureGateway { service, arg } => write!(f, "sg #{service}, {arg}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_kinds() {
        assert_eq!(
            Instr::B {
                target: Target::Abs(0)
            }
            .branch_kind(),
            BranchKind::Direct
        );
        assert_eq!(
            Instr::Bx { rm: Reg::Lr }.branch_kind(),
            BranchKind::ReturnBx
        );
        assert_eq!(
            Instr::Bx { rm: Reg::R3 }.branch_kind(),
            BranchKind::IndirectJump
        );
        assert_eq!(
            Instr::Pop {
                list: RegList::new().with(Reg::Pc)
            }
            .branch_kind(),
            BranchKind::ReturnPop
        );
        assert_eq!(
            Instr::Pop {
                list: RegList::new().with(Reg::R4)
            }
            .branch_kind(),
            BranchKind::None
        );
        assert_eq!(
            Instr::LdrImm {
                rt: Reg::Pc,
                rn: Reg::R0,
                offset: 0
            }
            .branch_kind(),
            BranchKind::LoadJump
        );
        assert_eq!(Instr::Nop.branch_kind(), BranchKind::None);
    }

    #[test]
    fn narrow_wide_sizes() {
        assert_eq!(Instr::Nop.size(), 2);
        assert_eq!(
            Instr::MovImm {
                rd: Reg::R0,
                imm: 5
            }
            .size(),
            2
        );
        assert_eq!(
            Instr::MovImm {
                rd: Reg::R0,
                imm: 500
            }
            .size(),
            4
        );
        assert_eq!(
            Instr::AddImm {
                rd: Reg::R0,
                rn: Reg::R0,
                imm: 1
            }
            .size(),
            2
        );
        assert_eq!(
            Instr::AddImm {
                rd: Reg::R0,
                rn: Reg::R0,
                imm: 100
            }
            .size(),
            4
        );
        assert_eq!(
            Instr::B {
                target: Target::Abs(0)
            }
            .size(),
            4
        );
        assert_eq!(Instr::Blx { rm: Reg::R2 }.size(), 2);
    }

    #[test]
    fn fall_through() {
        assert!(!Instr::B {
            target: Target::Abs(0)
        }
        .falls_through());
        assert!(Instr::BCond {
            cond: Cond::Eq,
            target: Target::Abs(0)
        }
        .falls_through());
        assert!(Instr::Bl {
            target: Target::Abs(0)
        }
        .falls_through());
        assert!(!Instr::Bx { rm: Reg::Lr }.falls_through());
        assert!(!Instr::Halt.falls_through());
        assert!(Instr::Nop.falls_through());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Instr::BCond {
                cond: Cond::Ne,
                target: Target::label("loop")
            }
            .to_string(),
            "bne loop"
        );
        assert_eq!(
            Instr::Push {
                list: RegList::new().with(Reg::R4).with(Reg::Lr)
            }
            .to_string(),
            "push {r4, lr}"
        );
    }
}
