//! Core registers of the ARMv8-M programmer's model.

use std::fmt;

/// A core register (`R0`–`R12`, `SP`, `LR`, `PC`).
///
/// The numbering follows the architectural register file: `SP` is `R13`,
/// `LR` is `R14` and `PC` is `R15`.
///
/// ```
/// use armv8m_isa::Reg;
/// assert_eq!(Reg::Lr.index(), 14);
/// assert_eq!(Reg::from_index(3), Some(Reg::R3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // the numbered registers document themselves
pub enum Reg {
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    /// Stack pointer (`R13`).
    Sp = 13,
    /// Link register (`R14`); holds the return address after a call.
    Lr = 14,
    /// Program counter (`R15`).
    Pc = 15,
}

impl Reg {
    /// All sixteen core registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::Sp,
        Reg::Lr,
        Reg::Pc,
    ];

    /// Returns the architectural register number (0–15).
    pub fn index(self) -> u8 {
        self as u8
    }

    /// Builds a register from its architectural number.
    ///
    /// Returns `None` when `idx > 15`.
    pub fn from_index(idx: u8) -> Option<Reg> {
        Reg::ALL.get(idx as usize).copied()
    }

    /// Whether this is one of the "low" registers (`R0`–`R7`) addressable
    /// by narrow 16-bit Thumb encodings.
    pub fn is_low(self) -> bool {
        self.index() < 8
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Sp => write!(f, "sp"),
            Reg::Lr => write!(f, "lr"),
            Reg::Pc => write!(f, "pc"),
            r => write!(f, "r{}", r.index()),
        }
    }
}

/// A register list as used by `PUSH`/`POP`, stored as a 16-bit mask with
/// bit *n* standing for `Rn`.
///
/// ```
/// use armv8m_isa::{Reg, RegList};
/// let list = RegList::new().with(Reg::R4).with(Reg::Lr);
/// assert!(list.contains(Reg::R4));
/// assert!(list.contains(Reg::Lr));
/// assert_eq!(list.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegList(u16);

impl RegList {
    /// Creates an empty register list.
    pub fn new() -> RegList {
        RegList(0)
    }

    /// Creates a list from a raw 16-bit mask (bit *n* = `Rn`).
    pub fn from_mask(mask: u16) -> RegList {
        RegList(mask)
    }

    /// The raw 16-bit mask.
    pub fn mask(self) -> u16 {
        self.0
    }

    /// Returns a copy of the list with `reg` added.
    #[must_use]
    pub fn with(self, reg: Reg) -> RegList {
        RegList(self.0 | 1 << reg.index())
    }

    /// Returns a copy of the list with `reg` removed.
    #[must_use]
    pub fn without(self, reg: Reg) -> RegList {
        RegList(self.0 & !(1 << reg.index()))
    }

    /// Whether `reg` is in the list.
    pub fn contains(self, reg: Reg) -> bool {
        self.0 & (1 << reg.index()) != 0
    }

    /// Number of registers in the list.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the list is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the registers in ascending index order (the order in
    /// which `POP` restores them and the reverse of `PUSH` store order).
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        Reg::ALL.into_iter().filter(move |r| self.contains(*r))
    }
}

impl FromIterator<Reg> for RegList {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> RegList {
        iter.into_iter().fold(RegList::new(), RegList::with)
    }
}

impl Extend<Reg> for RegList {
    fn extend<I: IntoIterator<Item = Reg>>(&mut self, iter: I) {
        for reg in iter {
            *self = self.with(reg);
        }
    }
}

impl fmt::Display for RegList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for reg in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{reg}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for reg in Reg::ALL {
            assert_eq!(Reg::from_index(reg.index()), Some(reg));
        }
        assert_eq!(Reg::from_index(16), None);
    }

    #[test]
    fn low_registers() {
        assert!(Reg::R0.is_low());
        assert!(Reg::R7.is_low());
        assert!(!Reg::R8.is_low());
        assert!(!Reg::Pc.is_low());
    }

    #[test]
    fn reglist_basic_ops() {
        let list = RegList::new().with(Reg::R0).with(Reg::R4).with(Reg::Pc);
        assert_eq!(list.len(), 3);
        assert!(list.contains(Reg::Pc));
        assert!(!list.contains(Reg::R1));
        let list = list.without(Reg::Pc);
        assert!(!list.contains(Reg::Pc));
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn reglist_iter_order() {
        let list: RegList = [Reg::Lr, Reg::R2, Reg::R9].into_iter().collect();
        let order: Vec<Reg> = list.iter().collect();
        assert_eq!(order, vec![Reg::R2, Reg::R9, Reg::Lr]);
    }

    #[test]
    fn reglist_display() {
        let list = RegList::new().with(Reg::R4).with(Reg::R5).with(Reg::Lr);
        assert_eq!(list.to_string(), "{r4, r5, lr}");
        assert_eq!(RegList::new().to_string(), "{}");
    }

    #[test]
    fn reglist_mask_roundtrip() {
        let list = RegList::from_mask(0b1000_0000_0001_0001);
        assert!(list.contains(Reg::R0));
        assert!(list.contains(Reg::R4));
        assert!(list.contains(Reg::Pc));
        assert_eq!(list.mask(), 0b1000_0000_0001_0001);
    }
}
