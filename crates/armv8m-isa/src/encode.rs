//! Binary encoding and decoding of T-lite instructions.
//!
//! # Format
//!
//! Instructions are one or two little-endian halfwords. The top nibble of
//! the first halfword selects the format:
//!
//! | op4 | layout (bits 11:0) | instruction |
//! |-----|--------------------|-------------|
//! | 0x0–0x7 | `rd:4 rn:4 rm:4` | three-register ALU / indexed loads |
//! | 0x8 | `sel:1 rd:4 rn:4 imm:3` | `ADDS`/`SUBS` small immediate |
//! | 0x9 | `sel:1 rd:3 rm:3 shift:5` | `LSLS`/`LSRS` (low regs) |
//! | 0xA | `-:1 rd:3 rm:3 shift:5` | `ASRS` (low regs) |
//! | 0xB | `sel:1 -:2 x:1 mask:8` | `PUSH`/`POP` (low regs + LR/PC) |
//! | 0xC | `-:1 rd:3 imm:8` | `MOVW` narrow (low rd) |
//! | 0xD | `-:1 rn:3 imm:8` | `CMP` narrow (low rn) |
//! | 0xE | `subop:4 fields:8` | `NOP HALT MOV CMP BX BLX` |
//! | 0xF | wide prefix | second halfword follows |
//!
//! Wide instructions put an 8-bit opcode (`0xF0`–`0xFD`) in the low byte
//! of the first halfword; the remaining 24 bits hold the operands.
//! Branch offsets are PC-relative byte distances from the *instruction's
//! own address* (not the ARM pipeline's `PC+4`), signed, halfword-aligned.

use crate::{Cond, DecodeError, EncodeError, Instr, Reg, RegList, Target};

// Wide opcodes: a 4-bit code in bits 11:8 of the first halfword (whose
// top nibble is the 0xF wide marker).
const W_MOVW: u8 = 0x0;
const W_MOVT: u8 = 0x1;
const W_ADD: u8 = 0x2;
const W_SUB: u8 = 0x3;
const W_CMP: u8 = 0x4;
const W_UDIV: u8 = 0x5;
const W_LDR: u8 = 0x6;
const W_STR: u8 = 0x7;
const W_LDRB: u8 = 0x8;
const W_STRB: u8 = 0x9;
const W_B: u8 = 0xA;
const W_BCOND: u8 = 0xB;
const W_BL: u8 = 0xC;
const W_SG: u8 = 0xD;

fn resolved(target: &Target) -> Result<u32, EncodeError> {
    match target {
        Target::Abs(a) => Ok(*a),
        Target::Label(name) => Err(EncodeError::UnresolvedLabel(name.clone())),
    }
}

fn branch_offset(addr: u32, target: &Target, bits: u32) -> Result<u32, EncodeError> {
    let to = resolved(target)?;
    if to % 2 != 0 {
        return Err(EncodeError::MisalignedTarget { to });
    }
    let max: i32 = (1 << (bits - 1)) - 1;
    let offset = to.wrapping_sub(addr) as i32;
    if offset > max || offset < -(max + 1) {
        return Err(EncodeError::BranchOutOfRange {
            from: addr,
            to,
            max,
        });
    }
    Ok((offset as u32) & ((1u32 << bits) - 1))
}

fn sign_extend(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn narrow(op4: u16, fields: u16) -> Vec<u8> {
    let hw = (op4 << 12) | (fields & 0x0FFF);
    hw.to_le_bytes().to_vec()
}

fn wide(op: u8, fields24: u32) -> Vec<u8> {
    let hw1 = 0xF000u16 | ((op as u16) << 8) | (fields24 & 0xFF) as u16;
    let hw2 = (fields24 >> 8) as u16;
    let mut bytes = hw1.to_le_bytes().to_vec();
    bytes.extend(hw2.to_le_bytes());
    bytes
}

fn low3(reg: Reg, instr: &Instr) -> Result<u16, EncodeError> {
    if reg.is_low() {
        Ok(reg.index() as u16)
    } else {
        Err(EncodeError::HighRegister {
            instr: instr.to_string(),
        })
    }
}

fn narrow_list_mask(list: RegList, extra: Reg, instr: &Instr) -> Result<u16, EncodeError> {
    let mut mask = 0u16;
    let mut extra_bit = 0u16;
    for reg in list.iter() {
        if reg.is_low() {
            mask |= 1 << reg.index();
        } else if reg == extra {
            extra_bit = 1;
        } else {
            return Err(EncodeError::InvalidRegList {
                list: instr.to_string(),
            });
        }
    }
    Ok(extra_bit << 8 | mask)
}

/// Encodes `instr`, assumed to sit at byte address `addr`, into its
/// little-endian byte representation.
///
/// # Errors
///
/// Returns an [`EncodeError`] when a branch target is still symbolic or
/// out of range, or when a narrow-only form uses a high register.
pub fn encode(instr: &Instr, addr: u32) -> Result<Vec<u8>, EncodeError> {
    let r = |reg: Reg| reg.index() as u16;
    Ok(match instr {
        // Three-register group.
        Instr::AddReg { rd, rn, rm } => narrow(0x0, r(*rd) << 8 | r(*rn) << 4 | r(*rm)),
        Instr::SubReg { rd, rn, rm } => narrow(0x1, r(*rd) << 8 | r(*rn) << 4 | r(*rm)),
        Instr::MulReg { rd, rn, rm } => narrow(0x2, r(*rd) << 8 | r(*rn) << 4 | r(*rm)),
        Instr::AndReg { rd, rn, rm } => narrow(0x3, r(*rd) << 8 | r(*rn) << 4 | r(*rm)),
        Instr::OrrReg { rd, rn, rm } => narrow(0x4, r(*rd) << 8 | r(*rn) << 4 | r(*rm)),
        Instr::EorReg { rd, rn, rm } => narrow(0x5, r(*rd) << 8 | r(*rn) << 4 | r(*rm)),
        Instr::LdrReg { rt, rn, rm } => narrow(0x6, r(*rt) << 8 | r(*rn) << 4 | r(*rm)),
        Instr::LdrbReg { rt, rn, rm } => narrow(0x7, r(*rt) << 8 | r(*rn) << 4 | r(*rm)),

        // Small-immediate add/sub (narrow when imm < 8).
        Instr::AddImm { rd, rn, imm } if *imm < 8 => narrow(0x8, r(*rd) << 7 | r(*rn) << 3 | *imm),
        Instr::SubImm { rd, rn, imm } if *imm < 8 => {
            narrow(0x8, 1 << 11 | r(*rd) << 7 | r(*rn) << 3 | *imm)
        }

        // Shifts (narrow only; low registers).
        Instr::LslImm { rd, rm, shift } => narrow(
            0x9,
            low3(*rd, instr)? << 8 | low3(*rm, instr)? << 5 | (*shift & 0x1F) as u16,
        ),
        Instr::LsrImm { rd, rm, shift } => narrow(
            0x9,
            1 << 11 | low3(*rd, instr)? << 8 | low3(*rm, instr)? << 5 | (*shift & 0x1F) as u16,
        ),
        Instr::AsrImm { rd, rm, shift } => narrow(
            0xA,
            low3(*rd, instr)? << 8 | low3(*rm, instr)? << 5 | (*shift & 0x1F) as u16,
        ),

        // Push/pop.
        Instr::Push { list } => narrow(0xB, narrow_list_mask(*list, Reg::Lr, instr)?),
        Instr::Pop { list } => narrow(0xB, 1 << 11 | narrow_list_mask(*list, Reg::Pc, instr)?),

        // Narrow immediates.
        Instr::MovImm { rd, imm } if rd.is_low() && *imm < 256 => narrow(0xC, (r(*rd) << 8) | *imm),
        Instr::CmpImm { rn, imm } if rn.is_low() && *imm < 256 => narrow(0xD, (r(*rn) << 8) | *imm),

        // Misc narrow.
        Instr::Nop => narrow(0xE, 0x000),
        Instr::Halt => narrow(0xE, 0x100),
        Instr::MovReg { rd, rm } => narrow(0xE, 0x200 | r(*rd) << 4 | r(*rm)),
        Instr::CmpReg { rn, rm } => narrow(0xE, 0x300 | r(*rn) << 4 | r(*rm)),
        Instr::Bx { rm } => narrow(0xE, 0x400 | r(*rm)),
        Instr::Blx { rm } => narrow(0xE, 0x500 | r(*rm)),

        // Wide forms.
        Instr::MovImm { rd, imm } => wide(W_MOVW, (*imm as u32) << 4 | r(*rd) as u32),
        Instr::MovTop { rd, imm } => wide(W_MOVT, (*imm as u32) << 4 | r(*rd) as u32),
        Instr::AddImm { rd, rn, imm } => wide(
            W_ADD,
            (*imm as u32) << 8 | (r(*rn) as u32) << 4 | r(*rd) as u32,
        ),
        Instr::SubImm { rd, rn, imm } => wide(
            W_SUB,
            (*imm as u32) << 8 | (r(*rn) as u32) << 4 | r(*rd) as u32,
        ),
        Instr::CmpImm { rn, imm } => wide(W_CMP, (*imm as u32) << 4 | r(*rn) as u32),
        Instr::UdivReg { rd, rn, rm } => wide(
            W_UDIV,
            (r(*rm) as u32) << 8 | (r(*rn) as u32) << 4 | r(*rd) as u32,
        ),
        Instr::LdrImm { rt, rn, offset } => wide(
            W_LDR,
            (*offset as u32) << 8 | (r(*rn) as u32) << 4 | r(*rt) as u32,
        ),
        Instr::StrImm { rt, rn, offset } => wide(
            W_STR,
            (*offset as u32) << 8 | (r(*rn) as u32) << 4 | r(*rt) as u32,
        ),
        Instr::LdrbImm { rt, rn, offset } => wide(
            W_LDRB,
            (*offset as u32) << 8 | (r(*rn) as u32) << 4 | r(*rt) as u32,
        ),
        Instr::StrbImm { rt, rn, offset } => wide(
            W_STRB,
            (*offset as u32) << 8 | (r(*rn) as u32) << 4 | r(*rt) as u32,
        ),
        Instr::B { target } => wide(W_B, branch_offset(addr, target, 24)?),
        Instr::BCond { cond, target } => wide(
            W_BCOND,
            branch_offset(addr, target, 20)? << 4 | cond.index() as u32,
        ),
        Instr::Bl { target } => wide(W_BL, branch_offset(addr, target, 24)?),
        Instr::SecureGateway { service, arg } => {
            wide(W_SG, (r(*arg) as u32) << 8 | *service as u32)
        }
    })
}

fn reg(bits: u32) -> Reg {
    Reg::from_index((bits & 0xF) as u8).expect("4-bit field is always a valid register")
}

/// Decodes the instruction starting at `bytes[0]`, assumed to be at byte
/// address `addr`. Returns the instruction and its size in bytes.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated input or an invalid opcode.
pub fn decode(bytes: &[u8], addr: u32) -> Result<(Instr, u32), DecodeError> {
    if bytes.len() < 2 {
        return Err(DecodeError::Truncated { addr });
    }
    let hw = u16::from_le_bytes([bytes[0], bytes[1]]);
    let op4 = hw >> 12;
    let f = (hw & 0x0FFF) as u32;
    let invalid = Err(DecodeError::InvalidOpcode { addr, halfword: hw });
    let instr = match op4 {
        0x0 => Instr::AddReg {
            rd: reg(f >> 8),
            rn: reg(f >> 4),
            rm: reg(f),
        },
        0x1 => Instr::SubReg {
            rd: reg(f >> 8),
            rn: reg(f >> 4),
            rm: reg(f),
        },
        0x2 => Instr::MulReg {
            rd: reg(f >> 8),
            rn: reg(f >> 4),
            rm: reg(f),
        },
        0x3 => Instr::AndReg {
            rd: reg(f >> 8),
            rn: reg(f >> 4),
            rm: reg(f),
        },
        0x4 => Instr::OrrReg {
            rd: reg(f >> 8),
            rn: reg(f >> 4),
            rm: reg(f),
        },
        0x5 => Instr::EorReg {
            rd: reg(f >> 8),
            rn: reg(f >> 4),
            rm: reg(f),
        },
        0x6 => Instr::LdrReg {
            rt: reg(f >> 8),
            rn: reg(f >> 4),
            rm: reg(f),
        },
        0x7 => Instr::LdrbReg {
            rt: reg(f >> 8),
            rn: reg(f >> 4),
            rm: reg(f),
        },
        0x8 => {
            let rd = reg(f >> 7);
            let rn = reg(f >> 3);
            let imm = (f & 0x7) as u16;
            if f & (1 << 11) == 0 {
                Instr::AddImm { rd, rn, imm }
            } else {
                Instr::SubImm { rd, rn, imm }
            }
        }
        0x9 => {
            let rd = reg((f >> 8) & 0x7);
            let rm = reg((f >> 5) & 0x7);
            let shift = (f & 0x1F) as u8;
            if f & (1 << 11) == 0 {
                Instr::LslImm { rd, rm, shift }
            } else {
                Instr::LsrImm { rd, rm, shift }
            }
        }
        0xA => Instr::AsrImm {
            rd: reg((f >> 8) & 0x7),
            rm: reg((f >> 5) & 0x7),
            shift: (f & 0x1F) as u8,
        },
        0xB => {
            let mask = (f & 0xFF) as u16;
            if f & (1 << 11) == 0 {
                let mut list = RegList::from_mask(mask);
                if f & (1 << 8) != 0 {
                    list = list.with(Reg::Lr);
                }
                Instr::Push { list }
            } else {
                let mut list = RegList::from_mask(mask);
                if f & (1 << 8) != 0 {
                    list = list.with(Reg::Pc);
                }
                Instr::Pop { list }
            }
        }
        0xC => Instr::MovImm {
            rd: reg((f >> 8) & 0x7),
            imm: (f & 0xFF) as u16,
        },
        0xD => Instr::CmpImm {
            rn: reg((f >> 8) & 0x7),
            imm: (f & 0xFF) as u16,
        },
        0xE => match f >> 8 {
            0x0 => Instr::Nop,
            0x1 => Instr::Halt,
            0x2 => Instr::MovReg {
                rd: reg(f >> 4),
                rm: reg(f),
            },
            0x3 => Instr::CmpReg {
                rn: reg(f >> 4),
                rm: reg(f),
            },
            0x4 => Instr::Bx { rm: reg(f) },
            0x5 => Instr::Blx { rm: reg(f) },
            _ => return invalid,
        },
        0xF => {
            if bytes.len() < 4 {
                return Err(DecodeError::Truncated { addr });
            }
            let hw2 = u16::from_le_bytes([bytes[2], bytes[3]]);
            let op = ((hw >> 8) & 0xF) as u8;
            let w = (hw as u32 & 0xFF) | (hw2 as u32) << 8;
            let instr = match op {
                W_MOVW => Instr::MovImm {
                    rd: reg(w),
                    imm: (w >> 4) as u16,
                },
                W_MOVT => Instr::MovTop {
                    rd: reg(w),
                    imm: (w >> 4) as u16,
                },
                W_ADD => Instr::AddImm {
                    rd: reg(w),
                    rn: reg(w >> 4),
                    imm: (w >> 8) as u16,
                },
                W_SUB => Instr::SubImm {
                    rd: reg(w),
                    rn: reg(w >> 4),
                    imm: (w >> 8) as u16,
                },
                W_CMP => Instr::CmpImm {
                    rn: reg(w),
                    imm: (w >> 4) as u16,
                },
                W_UDIV => Instr::UdivReg {
                    rd: reg(w),
                    rn: reg(w >> 4),
                    rm: reg(w >> 8),
                },
                W_LDR => Instr::LdrImm {
                    rt: reg(w),
                    rn: reg(w >> 4),
                    offset: (w >> 8) as u16,
                },
                W_STR => Instr::StrImm {
                    rt: reg(w),
                    rn: reg(w >> 4),
                    offset: (w >> 8) as u16,
                },
                W_LDRB => Instr::LdrbImm {
                    rt: reg(w),
                    rn: reg(w >> 4),
                    offset: (w >> 8) as u16,
                },
                W_STRB => Instr::StrbImm {
                    rt: reg(w),
                    rn: reg(w >> 4),
                    offset: (w >> 8) as u16,
                },
                W_B => Instr::B {
                    target: Target::Abs(addr.wrapping_add(sign_extend(w, 24) as u32)),
                },
                W_BCOND => {
                    let cond = match Cond::from_index((w & 0xF) as u8) {
                        Some(c) => c,
                        None => return invalid,
                    };
                    Instr::BCond {
                        cond,
                        target: Target::Abs(addr.wrapping_add(sign_extend(w >> 4, 20) as u32)),
                    }
                }
                W_BL => Instr::Bl {
                    target: Target::Abs(addr.wrapping_add(sign_extend(w, 24) as u32)),
                },
                W_SG => Instr::SecureGateway {
                    service: (w & 0xFF) as u8,
                    arg: reg(w >> 8),
                },
                _ => return invalid,
            };
            return Ok((instr, 4));
        }
        _ => unreachable!("op4 is a 4-bit value"),
    };
    Ok((instr, 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(instr: Instr, addr: u32) {
        let bytes = encode(&instr, addr).expect("encodable");
        assert_eq!(bytes.len() as u32, instr.size(), "size mismatch: {instr}");
        let (decoded, size) = decode(&bytes, addr).expect("decodable");
        assert_eq!(size, instr.size());
        assert_eq!(decoded, instr, "roundtrip mismatch at {addr:#x}");
    }

    #[test]
    fn roundtrip_all_basic() {
        use Reg::*;
        let cases = vec![
            Instr::MovImm { rd: R0, imm: 42 },
            Instr::MovImm { rd: R9, imm: 42 },
            Instr::MovImm {
                rd: R3,
                imm: 0xBEEF,
            },
            Instr::MovTop {
                rd: R3,
                imm: 0x2000,
            },
            Instr::MovReg { rd: R8, rm: Sp },
            Instr::AddImm {
                rd: R1,
                rn: R1,
                imm: 4,
            },
            Instr::AddImm {
                rd: R1,
                rn: R2,
                imm: 400,
            },
            Instr::SubImm {
                rd: Sp,
                rn: Sp,
                imm: 16,
            },
            Instr::AddReg {
                rd: R1,
                rn: R2,
                rm: R3,
            },
            Instr::SubReg {
                rd: R11,
                rn: R2,
                rm: R3,
            },
            Instr::MulReg {
                rd: R1,
                rn: R1,
                rm: R4,
            },
            Instr::UdivReg {
                rd: R0,
                rn: R1,
                rm: R2,
            },
            Instr::AndReg {
                rd: R0,
                rn: R0,
                rm: R1,
            },
            Instr::OrrReg {
                rd: R0,
                rn: R0,
                rm: R1,
            },
            Instr::EorReg {
                rd: R5,
                rn: R5,
                rm: R6,
            },
            Instr::LslImm {
                rd: R0,
                rm: R1,
                shift: 2,
            },
            Instr::LsrImm {
                rd: R0,
                rm: R1,
                shift: 31,
            },
            Instr::AsrImm {
                rd: R7,
                rm: R7,
                shift: 8,
            },
            Instr::CmpImm { rn: R0, imm: 0 },
            Instr::CmpImm { rn: R0, imm: 1000 },
            Instr::CmpImm { rn: R10, imm: 3 },
            Instr::CmpReg { rn: R4, rm: R5 },
            Instr::LdrImm {
                rt: R0,
                rn: R1,
                offset: 8,
            },
            Instr::LdrImm {
                rt: Pc,
                rn: R2,
                offset: 0,
            },
            Instr::LdrReg {
                rt: R0,
                rn: R1,
                rm: R2,
            },
            Instr::StrImm {
                rt: R0,
                rn: Sp,
                offset: 4,
            },
            Instr::LdrbImm {
                rt: R3,
                rn: R4,
                offset: 1,
            },
            Instr::LdrbReg {
                rt: R3,
                rn: R4,
                rm: R5,
            },
            Instr::StrbImm {
                rt: R3,
                rn: R4,
                offset: 255,
            },
            Instr::Push {
                list: RegList::new().with(R4).with(R5).with(Lr),
            },
            Instr::Pop {
                list: RegList::new().with(R4).with(R5).with(Pc),
            },
            Instr::Blx { rm: R3 },
            Instr::Bx { rm: Lr },
            Instr::Bx { rm: R12 },
            Instr::Nop,
            Instr::Halt,
            Instr::SecureGateway {
                service: crate::service::LOG_LOOP_COND,
                arg: R2,
            },
        ];
        for instr in cases {
            roundtrip(instr.clone(), 0x100);
            roundtrip(instr, 0x2000_0000);
        }
    }

    #[test]
    fn roundtrip_branches() {
        for addr in [0u32, 0x400, 0x10_000] {
            for delta in [-1024i32, -2, 0, 2, 4096] {
                let to = addr.wrapping_add(delta as u32);
                roundtrip(
                    Instr::B {
                        target: Target::Abs(to),
                    },
                    addr,
                );
                roundtrip(
                    Instr::Bl {
                        target: Target::Abs(to),
                    },
                    addr,
                );
                for cond in Cond::ALL {
                    roundtrip(
                        Instr::BCond {
                            cond,
                            target: Target::Abs(to),
                        },
                        addr,
                    );
                }
            }
        }
    }

    #[test]
    fn unresolved_label_rejected() {
        let err = encode(
            &Instr::B {
                target: Target::label("somewhere"),
            },
            0,
        )
        .unwrap_err();
        assert!(matches!(err, EncodeError::UnresolvedLabel(_)));
    }

    #[test]
    fn branch_range_enforced() {
        // ±2^19-1 bytes for conditional branches.
        let err = encode(
            &Instr::BCond {
                cond: Cond::Eq,
                target: Target::Abs(0x0010_0000),
            },
            0,
        )
        .unwrap_err();
        assert!(matches!(err, EncodeError::BranchOutOfRange { .. }));
        // Unconditional reaches ±2^23-1.
        encode(
            &Instr::B {
                target: Target::Abs(0x0010_0000),
            },
            0,
        )
        .expect("in range for B");
    }

    #[test]
    fn misaligned_target_rejected() {
        let err = encode(
            &Instr::B {
                target: Target::Abs(0x101),
            },
            0,
        )
        .unwrap_err();
        assert!(matches!(err, EncodeError::MisalignedTarget { .. }));
    }

    #[test]
    fn high_register_shift_rejected() {
        let err = encode(
            &Instr::LslImm {
                rd: Reg::R8,
                rm: Reg::R0,
                shift: 1,
            },
            0,
        )
        .unwrap_err();
        assert!(matches!(err, EncodeError::HighRegister { .. }));
    }

    #[test]
    fn invalid_push_list_rejected() {
        let err = encode(
            &Instr::Push {
                list: RegList::new().with(Reg::R8),
            },
            0,
        )
        .unwrap_err();
        assert!(matches!(err, EncodeError::InvalidRegList { .. }));
        // LR is fine in a push, PC is fine in a pop.
        encode(
            &Instr::Push {
                list: RegList::new().with(Reg::Lr),
            },
            0,
        )
        .expect("push lr");
        encode(
            &Instr::Pop {
                list: RegList::new().with(Reg::Pc),
            },
            0,
        )
        .expect("pop pc");
    }

    #[test]
    fn truncated_input() {
        assert!(matches!(
            decode(&[0x00], 0),
            Err(DecodeError::Truncated { .. })
        ));
        // A wide prefix with only two bytes available.
        let bytes = encode(
            &Instr::B {
                target: Target::Abs(4),
            },
            0,
        )
        .expect("encode");
        assert!(matches!(
            decode(&bytes[..2], 0),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn invalid_opcode() {
        // op4 = 0xE with an unused subop.
        let hw: u16 = 0xEF00;
        assert!(matches!(
            decode(&hw.to_le_bytes(), 0),
            Err(DecodeError::InvalidOpcode { .. })
        ));
    }
}
