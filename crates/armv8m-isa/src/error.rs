//! Error types for encoding, decoding and assembly.

use std::fmt;

/// An error produced while encoding an instruction to bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A branch target was still a symbolic label; assemble first.
    UnresolvedLabel(String),
    /// A PC-relative branch offset does not fit its encoding.
    BranchOutOfRange {
        /// Address of the branch instruction.
        from: u32,
        /// Absolute target address.
        to: u32,
        /// Maximum representable byte distance.
        max: i32,
    },
    /// A narrow encoding only admits low registers (`R0`–`R7`).
    HighRegister {
        /// The instruction's assembly form.
        instr: String,
    },
    /// A `PUSH`/`POP` register list mixes registers the narrow encoding
    /// cannot express (only `R0`–`R7` plus `LR` for push / `PC` for pop).
    InvalidRegList {
        /// The offending list's assembly form.
        list: String,
    },
    /// A branch offset was odd; all instruction addresses are even.
    MisalignedTarget {
        /// Absolute target address.
        to: u32,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::UnresolvedLabel(name) => {
                write!(f, "unresolved label `{name}` at encode time")
            }
            EncodeError::BranchOutOfRange { from, to, max } => write!(
                f,
                "branch from {from:#x} to {to:#x} exceeds ±{max:#x} byte range"
            ),
            EncodeError::HighRegister { instr } => {
                write!(f, "narrow encoding of `{instr}` requires low registers")
            }
            EncodeError::InvalidRegList { list } => {
                write!(f, "register list {list} not encodable in narrow push/pop")
            }
            EncodeError::MisalignedTarget { to } => {
                write!(f, "branch target {to:#x} is not halfword aligned")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// An error produced while decoding bytes back into an instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes were available than the instruction's length requires.
    Truncated {
        /// Address at which decoding was attempted.
        addr: u32,
    },
    /// The bit pattern does not correspond to any T-lite instruction.
    InvalidOpcode {
        /// Address of the undecodable halfword.
        addr: u32,
        /// The offending first halfword.
        halfword: u16,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { addr } => {
                write!(f, "instruction at {addr:#x} is truncated")
            }
            DecodeError::InvalidOpcode { addr, halfword } => {
                write!(f, "invalid opcode {halfword:#06x} at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// An error produced by the two-pass assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was defined more than once.
    DuplicateLabel(String),
    /// A branch referenced a label that was never defined.
    UndefinedLabel(String),
    /// An instruction could not be encoded after address assignment.
    Encode(EncodeError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::DuplicateLabel(name) => write!(f, "label `{name}` defined twice"),
            AsmError::UndefinedLabel(name) => write!(f, "label `{name}` is undefined"),
            AsmError::Encode(e) => write!(f, "encode error: {e}"),
        }
    }
}

impl std::error::Error for AsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsmError::Encode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> AsmError {
        AsmError::Encode(e)
    }
}
