//! Executable images: the output of assembly and the input to the CPU,
//! the hash engine (`H_MEM`) and the verifier's path reconstruction.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{decode, DecodeError, Instr};

/// An assembled, address-resolved code image.
///
/// The image keeps both the raw bytes (what gets hashed into `H_MEM` and
/// what the MPU protects) and the decoded instruction stream indexed by
/// address (what the CPU executes and the verifier replays).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    base: u32,
    bytes: Vec<u8>,
    instrs: Vec<(u32, Instr)>,
    symbols: HashMap<String, u32>,
    funcs: Vec<(String, u32)>,
    index: HashMap<u32, usize>,
}

impl Image {
    pub(crate) fn from_parts(
        base: u32,
        bytes: Vec<u8>,
        instrs: Vec<(u32, Instr)>,
        symbols: HashMap<String, u32>,
        funcs: Vec<(String, u32)>,
    ) -> Image {
        let index = instrs
            .iter()
            .enumerate()
            .map(|(i, (addr, _))| (*addr, i))
            .collect();
        Image {
            base,
            bytes,
            instrs,
            symbols,
            funcs,
            index,
        }
    }

    /// Reconstructs an image by decoding a raw byte blob loaded at `base`.
    ///
    /// Symbol information is absent (empty tables); this models what a
    /// binary-only tool sees without the ELF symbol table.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the blob contains an invalid or
    /// truncated instruction.
    pub fn from_bytes(base: u32, bytes: Vec<u8>) -> Result<Image, DecodeError> {
        let mut instrs = Vec::new();
        let mut offset = 0usize;
        while offset < bytes.len() {
            let addr = base + offset as u32;
            let (instr, size) = decode(&bytes[offset..], addr)?;
            instrs.push((addr, instr));
            offset += size as usize;
        }
        Ok(Image::from_parts(
            base,
            bytes,
            instrs,
            HashMap::new(),
            Vec::new(),
        ))
    }

    /// Base (load) address of the image.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// One-past-the-end address of the image.
    pub fn end(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }

    /// The raw encoded bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The decoded instruction stream as `(address, instruction)` pairs
    /// in ascending address order.
    pub fn instrs(&self) -> &[(u32, Instr)] {
        &self.instrs
    }

    /// Looks up the instruction starting at `addr`.
    pub fn instr_at(&self, addr: u32) -> Option<&Instr> {
        self.index.get(&addr).map(|&i| &self.instrs[i].1)
    }

    /// The address of the instruction following the one at `addr`.
    pub fn next_addr(&self, addr: u32) -> Option<u32> {
        self.instr_at(addr).map(|i| addr + i.size())
    }

    /// Resolves a symbol (label or function name) to its address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All symbols defined in the image.
    pub fn symbols(&self) -> &HashMap<String, u32> {
        &self.symbols
    }

    /// Function entry points in definition order.
    pub fn funcs(&self) -> &[(String, u32)] {
        &self.funcs
    }

    /// Whether `addr` is a function entry point.
    pub fn is_func_entry(&self, addr: u32) -> bool {
        self.funcs.iter().any(|(_, a)| *a == addr)
    }

    /// Renders the image as re-assemblable text assembly (`.tasm`):
    /// symbols become labels/`.func` directives and branch targets are
    /// emitted symbolically where a label exists. The output parses
    /// back through [`crate::parse_module`] into an equivalent image.
    pub fn to_tasm(&self) -> String {
        use crate::Target;
        let mut by_addr: HashMap<u32, Vec<&str>> = HashMap::new();
        for (name, addr) in &self.symbols {
            by_addr.entry(*addr).or_default().push(name);
        }
        let func_addrs: std::collections::HashSet<u32> =
            self.funcs.iter().map(|(_, a)| *a).collect();
        let mut out = String::new();
        for (addr, instr) in &self.instrs {
            if let Some(names) = by_addr.get(addr) {
                let mut names = names.clone();
                names.sort_unstable();
                for name in names {
                    if func_addrs.contains(addr)
                        && self.funcs.iter().any(|(n, a)| n == name && a == addr)
                    {
                        let _ = writeln!(out, ".func {name}");
                    } else {
                        let _ = writeln!(out, "{name}:");
                    }
                }
            }
            // Symbolic branch targets where possible.
            let mut display = instr.clone();
            if let Some(t) = display.target_mut() {
                if let Target::Abs(a) = t {
                    if let Some(names) = by_addr.get(a) {
                        let mut names = names.clone();
                        names.sort_unstable();
                        *t = Target::label(names[0]);
                    }
                }
            }
            let _ = writeln!(out, "    {display}");
        }
        out
    }

    /// Renders a human-readable disassembly listing with addresses and
    /// symbol annotations.
    pub fn disassemble(&self) -> String {
        let mut by_addr: HashMap<u32, Vec<&str>> = HashMap::new();
        for (name, addr) in &self.symbols {
            by_addr.entry(*addr).or_default().push(name);
        }
        let mut out = String::new();
        for (addr, instr) in &self.instrs {
            if let Some(names) = by_addr.get(addr) {
                let mut names = names.clone();
                names.sort_unstable();
                for name in names {
                    let _ = writeln!(out, "{name}:");
                }
            }
            let _ = writeln!(out, "  {addr:#010x}: {instr}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asm, Reg};

    fn sample() -> Image {
        let mut a = Asm::new();
        a.func("main");
        a.movi(Reg::R0, 7);
        a.label("spin");
        a.subi(Reg::R0, Reg::R0, 1);
        a.bne("spin");
        a.halt();
        a.into_module().assemble(0x100).expect("assembles")
    }

    #[test]
    fn lookup_by_address() {
        let image = sample();
        let spin = image.symbol("spin").unwrap();
        assert!(image.instr_at(spin).is_some());
        assert!(image.instr_at(spin + 1).is_none());
        assert_eq!(image.next_addr(spin), Some(spin + 2));
    }

    #[test]
    fn from_bytes_roundtrip() {
        let image = sample();
        let redecoded = Image::from_bytes(image.base(), image.bytes().to_vec()).expect("decodes");
        let original: Vec<_> = image.instrs().to_vec();
        assert_eq!(redecoded.instrs(), &original[..]);
        assert_eq!(redecoded.end(), image.end());
    }

    #[test]
    fn func_entries() {
        let image = sample();
        assert!(image.is_func_entry(0x100));
        assert!(!image.is_func_entry(0x102));
    }

    #[test]
    fn to_tasm_reassembles_byte_identically() {
        let image = sample();
        let tasm = image.to_tasm();
        assert!(tasm.contains(".func main"), "{tasm}");
        assert!(tasm.contains("spin:"), "{tasm}");
        let module = crate::parse_module(&tasm).expect("parses");
        let rebuilt = module.assemble(image.base()).expect("assembles");
        assert_eq!(rebuilt.bytes(), image.bytes());
        assert_eq!(rebuilt.symbol("spin"), image.symbol("spin"));
    }

    #[test]
    fn to_tasm_without_symbols_uses_absolute_targets() {
        let image = sample();
        let bare = Image::from_bytes(image.base(), image.bytes().to_vec()).unwrap();
        let tasm = bare.to_tasm();
        let rebuilt = crate::parse_module(&tasm)
            .expect("parses")
            .assemble(image.base())
            .expect("assembles");
        assert_eq!(rebuilt.bytes(), image.bytes());
    }

    #[test]
    fn disassembly_contains_symbols_and_addresses() {
        let listing = sample().disassemble();
        assert!(listing.contains("main:"));
        assert!(listing.contains("spin:"));
        assert!(listing.contains("0x00000100"));
        assert!(listing.contains("halt"));
    }
}
