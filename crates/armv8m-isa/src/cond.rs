//! Condition codes and the application program status register (APSR).

use std::fmt;

/// APSR condition flags (`N`, `Z`, `C`, `V`).
///
/// Flag-setting data-processing instructions and `CMP` update these; the
/// conditional branch instructions test them via [`Cond::passes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Flags {
    /// Negative: the result's sign bit.
    pub n: bool,
    /// Zero: the result was zero.
    pub z: bool,
    /// Carry (or NOT borrow for subtraction).
    pub c: bool,
    /// Signed overflow.
    pub v: bool,
}

impl Flags {
    /// Flags after an addition-like operation `a + b (+ carry_in)`.
    pub fn from_add(a: u32, b: u32, carry_in: bool) -> (u32, Flags) {
        let (sum1, c1) = a.overflowing_add(b);
        let (sum, c2) = sum1.overflowing_add(carry_in as u32);
        let carry = c1 | c2;
        let overflow = ((a ^ sum) & (b ^ sum)) >> 31 != 0;
        (
            sum,
            Flags {
                n: (sum as i32) < 0,
                z: sum == 0,
                c: carry,
                v: overflow,
            },
        )
    }

    /// Flags after a subtraction `a - b`, ARM-style (C = NOT borrow).
    pub fn from_sub(a: u32, b: u32) -> (u32, Flags) {
        Flags::from_add(a, !b, true)
    }

    /// Flags after a pure logical operation (carry/overflow preserved).
    pub fn from_logical(result: u32, prev: Flags) -> Flags {
        Flags {
            n: (result as i32) < 0,
            z: result == 0,
            c: prev.c,
            v: prev.v,
        }
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}",
            if self.n { 'N' } else { 'n' },
            if self.z { 'Z' } else { 'z' },
            if self.c { 'C' } else { 'c' },
            if self.v { 'V' } else { 'v' },
        )
    }
}

/// A branch condition code.
///
/// ```
/// use armv8m_isa::{Cond, Flags};
/// let flags = Flags { z: true, ..Flags::default() };
/// assert!(Cond::Eq.passes(flags));
/// assert!(!Cond::Ne.passes(flags));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Equal (`Z == 1`).
    Eq = 0,
    /// Not equal (`Z == 0`).
    Ne = 1,
    /// Carry set / unsigned higher-or-same (`C == 1`).
    Cs = 2,
    /// Carry clear / unsigned lower (`C == 0`).
    Cc = 3,
    /// Minus / negative (`N == 1`).
    Mi = 4,
    /// Plus / non-negative (`N == 0`).
    Pl = 5,
    /// Overflow (`V == 1`).
    Vs = 6,
    /// No overflow (`V == 0`).
    Vc = 7,
    /// Unsigned higher (`C == 1 && Z == 0`).
    Hi = 8,
    /// Unsigned lower-or-same (`C == 0 || Z == 1`).
    Ls = 9,
    /// Signed greater-or-equal (`N == V`).
    Ge = 10,
    /// Signed less (`N != V`).
    Lt = 11,
    /// Signed greater (`Z == 0 && N == V`).
    Gt = 12,
    /// Signed less-or-equal (`Z == 1 || N != V`).
    Le = 13,
}

impl Cond {
    /// All fourteen usable condition codes.
    pub const ALL: [Cond; 14] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Cs,
        Cond::Cc,
        Cond::Mi,
        Cond::Pl,
        Cond::Vs,
        Cond::Vc,
        Cond::Hi,
        Cond::Ls,
        Cond::Ge,
        Cond::Lt,
        Cond::Gt,
        Cond::Le,
    ];

    /// Whether the condition holds for the given flags.
    pub fn passes(self, f: Flags) -> bool {
        match self {
            Cond::Eq => f.z,
            Cond::Ne => !f.z,
            Cond::Cs => f.c,
            Cond::Cc => !f.c,
            Cond::Mi => f.n,
            Cond::Pl => !f.n,
            Cond::Vs => f.v,
            Cond::Vc => !f.v,
            Cond::Hi => f.c && !f.z,
            Cond::Ls => !f.c || f.z,
            Cond::Ge => f.n == f.v,
            Cond::Lt => f.n != f.v,
            Cond::Gt => !f.z && f.n == f.v,
            Cond::Le => f.z || f.n != f.v,
        }
    }

    /// The logically opposite condition (`EQ` ↔ `NE`, …).
    pub fn invert(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Cs => Cond::Cc,
            Cond::Cc => Cond::Cs,
            Cond::Mi => Cond::Pl,
            Cond::Pl => Cond::Mi,
            Cond::Vs => Cond::Vc,
            Cond::Vc => Cond::Vs,
            Cond::Hi => Cond::Ls,
            Cond::Ls => Cond::Hi,
            Cond::Ge => Cond::Lt,
            Cond::Lt => Cond::Ge,
            Cond::Gt => Cond::Le,
            Cond::Le => Cond::Gt,
        }
    }

    /// Builds a condition from its 4-bit encoding.
    pub fn from_index(idx: u8) -> Option<Cond> {
        Cond::ALL.get(idx as usize).copied()
    }

    /// The 4-bit encoding of the condition.
    pub fn index(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Cs => "cs",
            Cond::Cc => "cc",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_flags() {
        let (sum, f) = Flags::from_add(1, 2, false);
        assert_eq!(sum, 3);
        assert!(!f.n && !f.z && !f.c && !f.v);

        let (sum, f) = Flags::from_add(u32::MAX, 1, false);
        assert_eq!(sum, 0);
        assert!(f.z && f.c && !f.v);

        let (_, f) = Flags::from_add(i32::MAX as u32, 1, false);
        assert!(f.v && f.n);
    }

    #[test]
    fn sub_flags_match_cmp_semantics() {
        // 5 - 3: positive, no borrow.
        let (diff, f) = Flags::from_sub(5, 3);
        assert_eq!(diff, 2);
        assert!(f.c && !f.z && !f.n);

        // 3 - 5: borrow (C clear), negative.
        let (_, f) = Flags::from_sub(3, 5);
        assert!(!f.c && f.n);

        // 4 - 4: zero, C set.
        let (_, f) = Flags::from_sub(4, 4);
        assert!(f.z && f.c);
    }

    #[test]
    fn signed_comparisons() {
        // -1 < 1 signed.
        let (_, f) = Flags::from_sub(-1i32 as u32, 1);
        assert!(Cond::Lt.passes(f));
        assert!(!Cond::Ge.passes(f));
        // but -1 > 1 unsigned.
        assert!(Cond::Hi.passes(f));
    }

    #[test]
    fn invert_is_involution() {
        for c in Cond::ALL {
            assert_eq!(c.invert().invert(), c);
        }
    }

    #[test]
    fn invert_is_exclusive() {
        // A condition and its inverse never both pass.
        for c in Cond::ALL {
            for bits in 0..16u8 {
                let f = Flags {
                    n: bits & 1 != 0,
                    z: bits & 2 != 0,
                    c: bits & 4 != 0,
                    v: bits & 8 != 0,
                };
                assert_ne!(c.passes(f), c.invert().passes(f), "{c} with {f}");
            }
        }
    }

    #[test]
    fn cond_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_index(c.index()), Some(c));
        }
        assert_eq!(Cond::from_index(14), None);
    }
}
