//! Module representation and the two-pass assembler.
//!
//! A [`Module`] is the unit the offline linker (`rap-link`) rewrites: an
//! ordered list of labels, function markers and instructions, with branch
//! targets still symbolic. [`Module::assemble`] assigns addresses, resolves
//! labels and produces an executable [`Image`].

use std::collections::HashMap;

use crate::{encode, AsmError, Cond, Image, Instr, Reg, RegList, Target};

/// One element of a [`Module`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A local label usable as a branch target.
    Label(String),
    /// A function-entry marker. Also defines a label of the same name.
    ///
    /// Function markers model the symbol/type information (`.type func,
    /// %function`) that a binary-level static-analysis tool reads from the
    /// ELF symbol table.
    Func(String),
    /// An instruction.
    Instr(Instr),
    /// Pseudo-instruction: load the absolute address of a label into a
    /// register. Expands to a `MOVW`/`MOVT` pair (8 bytes).
    LoadAddr {
        /// Destination register.
        rd: Reg,
        /// The address to materialize.
        target: Target,
    },
}

impl Item {
    /// The encoded size of the item in bytes (0 for labels/markers).
    pub fn size(&self) -> u32 {
        match self {
            Item::Label(_) | Item::Func(_) => 0,
            Item::Instr(i) => i.size(),
            Item::LoadAddr { .. } => 8,
        }
    }
}

/// An assembly module: the input to [`Module::assemble`] and the object
/// the RAP-Track offline phase transforms.
///
/// ```
/// use armv8m_isa::{Asm, Reg};
/// let mut a = Asm::new();
/// a.func("main");
/// a.movi(Reg::R0, 3);
/// a.label("loop");
/// a.subi(Reg::R0, Reg::R0, 1);
/// a.cmpi(Reg::R0, 0);
/// a.bne("loop");
/// a.halt();
/// let image = a.into_module().assemble(0x0)?;
/// assert_eq!(image.symbol("main"), Some(0x0));
/// # Ok::<(), armv8m_isa::AsmError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Module {
    /// The ordered items of the module.
    pub items: Vec<Item>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Total encoded size of the module in bytes.
    pub fn size(&self) -> u32 {
        self.items.iter().map(Item::size).sum()
    }

    /// Number of instructions (including pseudo-expansion of `LoadAddr`).
    pub fn instr_count(&self) -> usize {
        self.items
            .iter()
            .map(|i| match i {
                Item::Instr(_) => 1,
                Item::LoadAddr { .. } => 2,
                _ => 0,
            })
            .sum()
    }

    /// Assigns addresses starting at `base`, resolves labels, encodes
    /// every instruction and returns the executable image.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] on duplicate/undefined labels or when an
    /// instruction cannot be encoded (branch out of range, high register
    /// in a narrow-only form, …).
    pub fn assemble(&self, base: u32) -> Result<Image, AsmError> {
        // Pass 1: assign addresses; sizes never depend on label values.
        let mut symbols: HashMap<String, u32> = HashMap::new();
        let mut funcs: Vec<(String, u32)> = Vec::new();
        let mut addr = base;
        for item in &self.items {
            match item {
                Item::Label(name) | Item::Func(name) => {
                    if symbols.insert(name.clone(), addr).is_some() {
                        return Err(AsmError::DuplicateLabel(name.clone()));
                    }
                    if let Item::Func(name) = item {
                        funcs.push((name.clone(), addr));
                    }
                }
                _ => addr += item.size(),
            }
        }

        let resolve = |target: &Target| -> Result<u32, AsmError> {
            match target {
                Target::Abs(a) => Ok(*a),
                Target::Label(name) => symbols
                    .get(name)
                    .copied()
                    .ok_or_else(|| AsmError::UndefinedLabel(name.clone())),
            }
        };

        // Pass 2: resolve and encode.
        let mut bytes = Vec::with_capacity(self.size() as usize);
        let mut instrs: Vec<(u32, Instr)> = Vec::with_capacity(self.instr_count());
        let mut addr = base;
        for item in &self.items {
            match item {
                Item::Label(_) | Item::Func(_) => {}
                Item::Instr(i) => {
                    let mut resolved = i.clone();
                    if let Some(t) = resolved.target_mut() {
                        *t = Target::Abs(resolve(t)?);
                    }
                    bytes.extend(encode(&resolved, addr).map_err(AsmError::Encode)?);
                    let size = resolved.size();
                    instrs.push((addr, resolved));
                    addr += size;
                }
                Item::LoadAddr { rd, target } => {
                    let value = resolve(target)?;
                    let low = Instr::MovImm {
                        rd: *rd,
                        imm: value as u16,
                    };
                    let high = Instr::MovTop {
                        rd: *rd,
                        imm: (value >> 16) as u16,
                    };
                    let mut emitted = 0;
                    for i in [low, high] {
                        bytes.extend(encode(&i, addr).map_err(AsmError::Encode)?);
                        let size = i.size();
                        instrs.push((addr, i));
                        addr += size;
                        emitted += size;
                    }
                    // Keep the fixed 8-byte footprint promised by size():
                    // pad with NOPs when MOVW chose its narrow form.
                    while emitted < 8 {
                        let nop = Instr::Nop;
                        bytes.extend(encode(&nop, addr).map_err(AsmError::Encode)?);
                        instrs.push((addr, nop));
                        addr += 2;
                        emitted += 2;
                    }
                }
            }
        }

        Ok(Image::from_parts(base, bytes, instrs, symbols, funcs))
    }
}

/// Ergonomic builder over [`Module`]: one method per instruction.
///
/// All branch-target arguments accept anything convertible to [`Target`]
/// (label `&str` or absolute `u32`). See [`Module`] for a full example.
#[derive(Debug, Clone, Default)]
pub struct Asm {
    module: Module,
}

impl Asm {
    /// Creates an empty builder.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Consumes the builder, yielding the accumulated module.
    pub fn into_module(self) -> Module {
        self.module
    }

    /// Appends a raw item.
    pub fn push_item(&mut self, item: Item) -> &mut Asm {
        self.module.items.push(item);
        self
    }

    /// Appends a raw instruction.
    pub fn instr(&mut self, i: Instr) -> &mut Asm {
        self.push_item(Item::Instr(i))
    }

    /// Defines a local label at the current position.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Asm {
        self.push_item(Item::Label(name.into()))
    }

    /// Defines a function entry (symbol + label) at the current position.
    pub fn func(&mut self, name: impl Into<String>) -> &mut Asm {
        self.push_item(Item::Func(name.into()))
    }

    /// `MOVW rd, #imm16`.
    pub fn movi(&mut self, rd: Reg, imm: u16) -> &mut Asm {
        self.instr(Instr::MovImm { rd, imm })
    }

    /// `MOVT rd, #imm16`.
    pub fn movt(&mut self, rd: Reg, imm: u16) -> &mut Asm {
        self.instr(Instr::MovTop { rd, imm })
    }

    /// Loads a full 32-bit constant via a `MOVW`/`MOVT` pair.
    pub fn mov32(&mut self, rd: Reg, value: u32) -> &mut Asm {
        self.movi(rd, value as u16);
        if value > 0xFFFF {
            self.movt(rd, (value >> 16) as u16);
        }
        self
    }

    /// Loads the address of `target` (pseudo; 8 bytes).
    pub fn load_addr(&mut self, rd: Reg, target: impl Into<Target>) -> &mut Asm {
        self.push_item(Item::LoadAddr {
            rd,
            target: target.into(),
        })
    }

    /// `MOV rd, rm`.
    pub fn mov(&mut self, rd: Reg, rm: Reg) -> &mut Asm {
        self.instr(Instr::MovReg { rd, rm })
    }

    /// `ADDS rd, rn, #imm`.
    pub fn addi(&mut self, rd: Reg, rn: Reg, imm: u16) -> &mut Asm {
        self.instr(Instr::AddImm { rd, rn, imm })
    }

    /// `ADDS rd, rn, rm`.
    pub fn add(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.instr(Instr::AddReg { rd, rn, rm })
    }

    /// `SUBS rd, rn, #imm`.
    pub fn subi(&mut self, rd: Reg, rn: Reg, imm: u16) -> &mut Asm {
        self.instr(Instr::SubImm { rd, rn, imm })
    }

    /// `SUBS rd, rn, rm`.
    pub fn sub(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.instr(Instr::SubReg { rd, rn, rm })
    }

    /// `MULS rd, rn, rm`.
    pub fn mul(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.instr(Instr::MulReg { rd, rn, rm })
    }

    /// `UDIV rd, rn, rm`.
    pub fn udiv(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.instr(Instr::UdivReg { rd, rn, rm })
    }

    /// `ANDS rd, rn, rm`.
    pub fn and(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.instr(Instr::AndReg { rd, rn, rm })
    }

    /// `ORRS rd, rn, rm`.
    pub fn orr(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.instr(Instr::OrrReg { rd, rn, rm })
    }

    /// `EORS rd, rn, rm`.
    pub fn eor(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.instr(Instr::EorReg { rd, rn, rm })
    }

    /// `LSLS rd, rm, #shift`.
    pub fn lsl(&mut self, rd: Reg, rm: Reg, shift: u8) -> &mut Asm {
        self.instr(Instr::LslImm { rd, rm, shift })
    }

    /// `LSRS rd, rm, #shift`.
    pub fn lsr(&mut self, rd: Reg, rm: Reg, shift: u8) -> &mut Asm {
        self.instr(Instr::LsrImm { rd, rm, shift })
    }

    /// `ASRS rd, rm, #shift`.
    pub fn asr(&mut self, rd: Reg, rm: Reg, shift: u8) -> &mut Asm {
        self.instr(Instr::AsrImm { rd, rm, shift })
    }

    /// `CMP rn, #imm`.
    pub fn cmpi(&mut self, rn: Reg, imm: u16) -> &mut Asm {
        self.instr(Instr::CmpImm { rn, imm })
    }

    /// `CMP rn, rm`.
    pub fn cmp(&mut self, rn: Reg, rm: Reg) -> &mut Asm {
        self.instr(Instr::CmpReg { rn, rm })
    }

    /// `LDR rt, [rn, #offset]`.
    pub fn ldr(&mut self, rt: Reg, rn: Reg, offset: u16) -> &mut Asm {
        self.instr(Instr::LdrImm { rt, rn, offset })
    }

    /// `LDR rt, [rn, rm, LSL #2]`.
    pub fn ldr_idx(&mut self, rt: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.instr(Instr::LdrReg { rt, rn, rm })
    }

    /// `STR rt, [rn, #offset]`.
    pub fn str_(&mut self, rt: Reg, rn: Reg, offset: u16) -> &mut Asm {
        self.instr(Instr::StrImm { rt, rn, offset })
    }

    /// `LDRB rt, [rn, #offset]`.
    pub fn ldrb(&mut self, rt: Reg, rn: Reg, offset: u16) -> &mut Asm {
        self.instr(Instr::LdrbImm { rt, rn, offset })
    }

    /// `LDRB rt, [rn, rm]`.
    pub fn ldrb_idx(&mut self, rt: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.instr(Instr::LdrbReg { rt, rn, rm })
    }

    /// `STRB rt, [rn, #offset]`.
    pub fn strb(&mut self, rt: Reg, rn: Reg, offset: u16) -> &mut Asm {
        self.instr(Instr::StrbImm { rt, rn, offset })
    }

    /// `PUSH {regs}`.
    pub fn push(&mut self, regs: &[Reg]) -> &mut Asm {
        self.instr(Instr::Push {
            list: regs.iter().copied().collect::<RegList>(),
        })
    }

    /// `POP {regs}`.
    pub fn pop(&mut self, regs: &[Reg]) -> &mut Asm {
        self.instr(Instr::Pop {
            list: regs.iter().copied().collect::<RegList>(),
        })
    }

    /// `B target`.
    pub fn b(&mut self, target: impl Into<Target>) -> &mut Asm {
        self.instr(Instr::B {
            target: target.into(),
        })
    }

    /// `B<cond> target`.
    pub fn bcond(&mut self, cond: Cond, target: impl Into<Target>) -> &mut Asm {
        self.instr(Instr::BCond {
            cond,
            target: target.into(),
        })
    }

    /// `BEQ target`.
    pub fn beq(&mut self, target: impl Into<Target>) -> &mut Asm {
        self.bcond(Cond::Eq, target)
    }

    /// `BNE target`.
    pub fn bne(&mut self, target: impl Into<Target>) -> &mut Asm {
        self.bcond(Cond::Ne, target)
    }

    /// `BLT target` (signed less).
    pub fn blt(&mut self, target: impl Into<Target>) -> &mut Asm {
        self.bcond(Cond::Lt, target)
    }

    /// `BGE target` (signed greater-or-equal).
    pub fn bge(&mut self, target: impl Into<Target>) -> &mut Asm {
        self.bcond(Cond::Ge, target)
    }

    /// `BGT target` (signed greater).
    pub fn bgt(&mut self, target: impl Into<Target>) -> &mut Asm {
        self.bcond(Cond::Gt, target)
    }

    /// `BLE target` (signed less-or-equal).
    pub fn ble(&mut self, target: impl Into<Target>) -> &mut Asm {
        self.bcond(Cond::Le, target)
    }

    /// `BHI target` (unsigned higher).
    pub fn bhi(&mut self, target: impl Into<Target>) -> &mut Asm {
        self.bcond(Cond::Hi, target)
    }

    /// `BLS target` (unsigned lower-or-same).
    pub fn bls(&mut self, target: impl Into<Target>) -> &mut Asm {
        self.bcond(Cond::Ls, target)
    }

    /// `BCS target` (carry set / unsigned ≥).
    pub fn bcs(&mut self, target: impl Into<Target>) -> &mut Asm {
        self.bcond(Cond::Cs, target)
    }

    /// `BCC target` (carry clear / unsigned <).
    pub fn bcc(&mut self, target: impl Into<Target>) -> &mut Asm {
        self.bcond(Cond::Cc, target)
    }

    /// `BL target` — direct call.
    pub fn bl(&mut self, target: impl Into<Target>) -> &mut Asm {
        self.instr(Instr::Bl {
            target: target.into(),
        })
    }

    /// `BLX rm` — indirect call.
    pub fn blx(&mut self, rm: Reg) -> &mut Asm {
        self.instr(Instr::Blx { rm })
    }

    /// Materializes `target`'s address in `scratch` and calls through it
    /// (`LoadAddr` + `BLX`) — the canonical indirect-call emission used
    /// by tests and the fuzzing generator.
    pub fn call_indirect(&mut self, scratch: Reg, target: impl Into<Target>) -> &mut Asm {
        self.load_addr(scratch, target);
        self.blx(scratch)
    }

    /// `BX rm`.
    pub fn bx(&mut self, rm: Reg) -> &mut Asm {
        self.instr(Instr::Bx { rm })
    }

    /// `BX LR` — plain return.
    pub fn ret(&mut self) -> &mut Asm {
        self.bx(Reg::Lr)
    }

    /// `NOP`.
    pub fn nop(&mut self) -> &mut Asm {
        self.instr(Instr::Nop)
    }

    /// Secure-gateway call (see [`crate::service`]).
    pub fn sg(&mut self, service: u8, arg: Reg) -> &mut Asm {
        self.instr(Instr::SecureGateway { service, arg })
    }

    /// Simulation terminator.
    pub fn halt(&mut self) -> &mut Asm {
        self.instr(Instr::Halt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_simple_loop() {
        let mut a = Asm::new();
        a.func("main");
        a.movi(Reg::R0, 3);
        a.label("loop");
        a.subi(Reg::R0, Reg::R0, 1);
        a.cmpi(Reg::R0, 0);
        a.bne("loop");
        a.halt();
        let image = a.into_module().assemble(0).expect("assembles");
        assert_eq!(image.symbol("main"), Some(0));
        assert_eq!(image.symbol("loop"), Some(2)); // movi r0,#3 is narrow
        let (_, instr) = image.instrs()[3].clone();
        match instr {
            Instr::BCond { cond, target } => {
                assert_eq!(cond, Cond::Ne);
                assert_eq!(target.abs(), Some(2));
            }
            other => panic!("expected bne, got {other}"),
        }
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut a = Asm::new();
        a.label("x").nop().label("x");
        assert_eq!(
            a.into_module().assemble(0),
            Err(AsmError::DuplicateLabel("x".into()))
        );
    }

    #[test]
    fn undefined_label_rejected() {
        let mut a = Asm::new();
        a.b("nowhere");
        assert_eq!(
            a.into_module().assemble(0),
            Err(AsmError::UndefinedLabel("nowhere".into()))
        );
    }

    #[test]
    fn load_addr_is_always_eight_bytes() {
        for base in [0u32, 0x1000] {
            for target_offset in [0u32, 2, 0x2000_0000 - 0x1000] {
                let mut a = Asm::new();
                a.label("start");
                a.load_addr(Reg::R3, Target::Abs(base + target_offset));
                a.label("after");
                a.halt();
                let image = a.into_module().assemble(base).expect("assembles");
                assert_eq!(
                    image.symbol("after").unwrap() - image.symbol("start").unwrap(),
                    8
                );
            }
        }
    }

    #[test]
    fn load_addr_materializes_full_value() {
        let mut a = Asm::new();
        a.load_addr(Reg::R3, Target::Abs(0x2000_1234));
        a.halt();
        let image = a.into_module().assemble(0).expect("assembles");
        // Expect MOVW 0x1234 then MOVT 0x2000 (order within pair).
        let instrs: Vec<Instr> = image.instrs().iter().map(|(_, i)| i.clone()).collect();
        assert!(instrs.contains(&Instr::MovImm {
            rd: Reg::R3,
            imm: 0x1234
        }));
        assert!(instrs.contains(&Instr::MovTop {
            rd: Reg::R3,
            imm: 0x2000
        }));
    }

    #[test]
    fn sizes_and_addresses_are_consistent() {
        let mut a = Asm::new();
        a.func("f");
        a.push(&[Reg::R4, Reg::Lr]);
        a.movi(Reg::R4, 1000); // wide (imm >= 256)
        a.addi(Reg::R4, Reg::R4, 1); // narrow
        a.pop(&[Reg::R4, Reg::Pc]);
        let module = a.into_module();
        let total = module.size();
        let image = module.assemble(0x100).expect("assembles");
        assert_eq!(image.bytes().len() as u32, total);
        // Addresses are strictly increasing by instruction size.
        let mut expect = 0x100;
        for (addr, instr) in image.instrs() {
            assert_eq!(*addr, expect);
            expect += instr.size();
        }
    }

    #[test]
    fn branch_to_function_marker() {
        let mut a = Asm::new();
        a.func("main");
        a.bl("helper");
        a.halt();
        a.func("helper");
        a.ret();
        let image = a.into_module().assemble(0).expect("assembles");
        assert_eq!(image.funcs().len(), 2);
        let helper = image.symbol("helper").unwrap();
        assert_eq!(image.funcs()[1], ("helper".to_string(), helper));
    }
}
