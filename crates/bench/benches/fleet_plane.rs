//! Fleet control plane scaling: pure registry + scheduler cost, no
//! network. The serve bench already prices the transport; this one
//! answers "how many devices can one control plane tick?" — the
//! steady-state observe+reschedule throughput and the p99 scheduling
//! lag (how long a due device waits inside a slot before its verdict
//! is applied) at 10/100/1000 devices.
//!
//! Run: `cargo bench -p rap-bench --bench fleet_plane -- [--quick]
//! [--json OUT] [--enforce]`

use std::time::Instant;

use rap_bench::harness::{BenchArgs, BenchGroup, BenchReport};
use rap_fleet::{Event, Policy, Registry, Scheduler};
use rap_obs::Json;

const FLEET_SIZES: [usize; 3] = [10, 100, 1000];

fn device_name(i: usize) -> String {
    format!("dev-{i:04}")
}

/// Builds a registered fleet and a scheduler with every device due at
/// t=0.
fn build(devices: usize, policy: &Policy) -> (Registry, Scheduler) {
    let mut registry = Registry::new(policy.clone());
    let mut scheduler = Scheduler::new();
    for i in 0..devices {
        let name = device_name(i);
        registry.register(&name, 0);
        scheduler.add(&name, 0);
    }
    (registry, scheduler)
}

/// Drives `slots` scheduler slots of a benign steady state: every due
/// device gets an Accepted verdict and is rescheduled. Returns the
/// number of rounds applied.
fn drive(registry: &mut Registry, scheduler: &mut Scheduler, policy: &Policy, slots: u64) -> u64 {
    let mut rounds = 0u64;
    for slot in 0..slots {
        let now_ms = slot * policy.round_interval_ms;
        registry.tick_all(now_ms);
        for device in scheduler.due(now_ms) {
            let fired = registry.observe(&device, now_ms, Event::Accepted);
            assert!(fired.is_empty(), "benign fleet must not transition");
            let state = registry.device(&device).expect("registered").state();
            scheduler.reschedule(&device, now_ms, state, policy);
            rounds += 1;
        }
    }
    rounds
}

/// One instrumented pass: per device-round, the wall-clock delay
/// between the slot becoming processable and that device's verdict
/// landing. This is the in-slot queueing a real driver adds on top of
/// the interval — the tail is what matters at 1000 devices.
fn p99_sched_lag_ns(registry: &mut Registry, scheduler: &mut Scheduler, policy: &Policy) -> u64 {
    let mut lags = Vec::new();
    for slot in 0..32u64 {
        let now_ms = slot * policy.round_interval_ms;
        registry.tick_all(now_ms);
        let slot_start = Instant::now();
        for device in scheduler.due(now_ms) {
            let _ = registry.observe(&device, now_ms, Event::Accepted);
            let state = registry.device(&device).expect("registered").state();
            scheduler.reschedule(&device, now_ms, state, policy);
            lags.push(slot_start.elapsed().as_nanos() as u64);
        }
    }
    lags.sort_unstable();
    lags[(lags.len().saturating_sub(1)) * 99 / 100]
}

fn main() {
    let args = BenchArgs::parse();
    let group = BenchGroup::new("fleet_plane").samples(if args.quick { 3 } else { 10 });
    let mut report = BenchReport::default();
    let policy = Policy::default();
    let slots = if args.quick { 16 } else { 64 };

    for devices in FLEET_SIZES {
        let rounds_per_iter = {
            let (mut registry, mut scheduler) = build(devices, &policy);
            drive(&mut registry, &mut scheduler, &policy, slots)
        };
        let stats = group.bench(&format!("steady_state_{devices}dev"), || {
            let (mut registry, mut scheduler) = build(devices, &policy);
            std::hint::black_box(drive(&mut registry, &mut scheduler, &policy, slots))
        });
        let rounds_per_sec = rounds_per_iter as f64 / stats.median.as_secs_f64();

        let (mut registry, mut scheduler) = build(devices, &policy);
        let p99_lag = p99_sched_lag_ns(&mut registry, &mut scheduler, &policy);

        println!(
            "  {devices:>4} devices: {:.0} rounds/s, p99 sched lag {} ns",
            rounds_per_sec, p99_lag
        );
        report.record_with(
            &format!("fleet_plane/steady_state_{devices}dev"),
            stats,
            [
                ("devices", Json::Uint(devices as u64)),
                ("rounds_per_iter", Json::Uint(rounds_per_iter)),
                ("rounds_per_sec", Json::Str(format!("{rounds_per_sec:.0}"))),
                ("p99_sched_lag_ns", Json::Uint(p99_lag)),
            ],
        );
    }

    if let Some(path) = &args.json_out {
        report.write(path).expect("write bench json");
        eprintln!("bench json -> {path}");
    }
}
