//! Figure-regeneration benches: one benchmark per paper figure. Each
//! iteration recomputes the figure's full data series, so the timing
//! doubles as a regression check on the measurement pipeline (see the
//! `figures` binary for the pretty tables).
//!
//! `--quick` reduces the sample count for CI smoke runs; `--json
//! <path>` writes median/p95 per figure (`BENCH_figures.json`).

use std::hint::black_box;

use rap_bench::harness::{BenchArgs, BenchGroup, BenchReport};
use rap_bench::{measure_instr_equiv, measure_naive, measure_plain, measure_rap, measure_traces};

/// Small deterministic subset used for per-iteration timing (the full
/// set runs in the `figures` binary).
fn sample_workloads() -> Vec<workloads::Workload> {
    vec![
        workloads::temperature::workload(),
        workloads::gps::workload(),
        workloads::beebs::prime(),
    ]
}

fn main() {
    let args = BenchArgs::parse();
    let group = BenchGroup::new("figures").samples(if args.quick { 3 } else { 10 });
    let mut report = BenchReport::default();

    let stats = group.bench("fig1_naive_vs_instrumentation", || {
        let mut sizes = Vec::new();
        for w in sample_workloads() {
            let naive = measure_naive(&w);
            let traces = measure_traces(&w);
            sizes.push((naive.cflog_bytes, traces.cflog_bytes, traces.cycles));
        }
        black_box(sizes)
    });
    report.record("figures/fig1_naive_vs_instrumentation", stats);

    let stats = group.bench("fig8_runtime_series", || {
        let mut cycles = Vec::new();
        for w in sample_workloads() {
            let plain = measure_plain(&w);
            let rap = measure_rap(&w);
            cycles.push((plain.cycles, rap.cycles));
        }
        black_box(cycles)
    });
    report.record("figures/fig8_runtime_series", stats);

    let stats = group.bench("fig9_cflog_series", || {
        let mut sizes = Vec::new();
        for w in sample_workloads() {
            let rap = measure_rap(&w);
            let equiv = measure_instr_equiv(&w);
            assert_eq!(rap.cflog_bytes, equiv.cflog_bytes);
            sizes.push(rap.cflog_bytes);
        }
        black_box(sizes)
    });
    report.record("figures/fig9_cflog_series", stats);

    let stats = group.bench("fig10_code_size_series", || {
        let mut sizes = Vec::new();
        for w in sample_workloads() {
            let linked = rap_link::link(&w.module, 0, rap_link::LinkOptions::default()).unwrap();
            let traces =
                cfa_baselines::instrument(&w.module, 0, cfa_baselines::TracesConfig::default())
                    .unwrap();
            sizes.push((w.module.size(), linked.image.end(), traces.image.end()));
        }
        black_box(sizes)
    });
    report.record("figures/fig10_code_size_series", stats);

    if let Some(path) = &args.json_out {
        report.write(path).expect("write bench json");
        println!("wrote {path}");
    }
}
