//! Figure-regeneration benches: one Criterion benchmark per paper
//! figure. Each iteration recomputes the figure's full data series, and
//! the series itself is printed once so `cargo bench` output doubles as
//! the figure data (see also the `figures` binary for pretty tables).

use criterion::{Criterion, criterion_group, criterion_main};
use std::hint::black_box;

use rap_bench::{
    measure_instr_equiv, measure_naive, measure_plain, measure_rap, measure_traces,
};

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group
}

/// Small deterministic subset used for per-iteration timing (the full
/// set runs in the `figures` binary).
fn sample_workloads() -> Vec<workloads::Workload> {
    vec![
        workloads::temperature::workload(),
        workloads::gps::workload(),
        workloads::beebs::prime(),
    ]
}

fn fig1_motivation(c: &mut Criterion) {
    let mut group = quick(c);
    group.bench_function("fig1_naive_vs_instrumentation", |b| {
        b.iter(|| {
            let mut sizes = Vec::new();
            for w in sample_workloads() {
                let naive = measure_naive(&w);
                let traces = measure_traces(&w);
                sizes.push((naive.cflog_bytes, traces.cflog_bytes, traces.cycles));
            }
            black_box(sizes)
        })
    });
    group.finish();
}

fn fig8_runtime(c: &mut Criterion) {
    let mut group = quick(c);
    group.bench_function("fig8_runtime_series", |b| {
        b.iter(|| {
            let mut cycles = Vec::new();
            for w in sample_workloads() {
                let plain = measure_plain(&w);
                let rap = measure_rap(&w);
                cycles.push((plain.cycles, rap.cycles));
            }
            black_box(cycles)
        })
    });
    group.finish();
}

fn fig9_cflog(c: &mut Criterion) {
    let mut group = quick(c);
    group.bench_function("fig9_cflog_series", |b| {
        b.iter(|| {
            let mut sizes = Vec::new();
            for w in sample_workloads() {
                let rap = measure_rap(&w);
                let equiv = measure_instr_equiv(&w);
                assert_eq!(rap.cflog_bytes, equiv.cflog_bytes);
                sizes.push(rap.cflog_bytes);
            }
            black_box(sizes)
        })
    });
    group.finish();
}

fn fig10_code_size(c: &mut Criterion) {
    let mut group = quick(c);
    group.bench_function("fig10_code_size_series", |b| {
        b.iter(|| {
            let mut sizes = Vec::new();
            for w in sample_workloads() {
                let linked =
                    rap_link::link(&w.module, 0, rap_link::LinkOptions::default()).unwrap();
                let traces = cfa_baselines::instrument(
                    &w.module,
                    0,
                    cfa_baselines::TracesConfig::default(),
                )
                .unwrap();
                sizes.push((
                    w.module.size(),
                    linked.image.end(),
                    traces.image.end(),
                ));
            }
            black_box(sizes)
        })
    });
    group.finish();
}

criterion_group!(
    figures,
    fig1_motivation,
    fig8_runtime,
    fig9_cflog,
    fig10_code_size
);
criterion_main!(figures);
