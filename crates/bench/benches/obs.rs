//! Observability overhead: the cost of leaving rap-obs instrumentation
//! compiled into the hot paths.
//!
//! Two claims are measured (and the second asserted):
//!
//! 1. a *disabled* trace collector costs one relaxed atomic load plus a
//!    branch per [`rap_obs::event`] site — reported as ns/event;
//! 2. fleet verification throughput with instrumentation disabled is
//!    within 2% of the same fleet with the collector enabled *and
//!    drained* — i.e. the always-on counters plus the disabled-tracing
//!    fast path are not a tax on the replay loop.
//!
//! `--quick` shrinks the fleet for CI smoke runs; `--json <path>`
//! writes the per-case summaries.

use rap_bench::harness::{BenchArgs, BenchGroup, BenchReport};
use rap_link::{link, LinkOptions};
use rap_track::{device_key, BatchOptions, CfaEngine, Challenge, EngineConfig, FleetJob, Verifier};

/// Events recorded per micro-bench iteration (amortizes loop overhead).
const EVENTS_PER_ITER: u64 = 1024;

struct Deployment {
    key: rap_track::Key,
    image: armv8m_isa::Image,
    map: rap_link::LinkMap,
    jobs: Vec<FleetJob>,
}

/// One attested workload replicated across a small fleet — enough
/// replay work that the per-event instrumentation cost is visible if it
/// exists, small enough to sample repeatedly.
fn deployment(devices: usize) -> Deployment {
    let w = workloads::gps::workload();
    let linked = link(&w.module, 0, LinkOptions::default()).expect("workload links");
    let key = device_key("obs-bench");
    let engine = CfaEngine::new(key.clone());
    let chal = Challenge::from_seed(7);
    let mut machine = mcu_sim::Machine::new(linked.image.clone());
    (w.attach)(&mut machine);
    let att = engine
        .attest(
            &mut machine,
            &linked.map,
            chal,
            EngineConfig {
                max_instrs: w.max_instrs * 2,
                watermark: Some(256),
            },
        )
        .expect("workload attests");
    let jobs = (0..devices)
        .map(|device| FleetJob {
            device: format!("gps-{device:03}"),
            chal,
            reports: att.reports.clone(),
        })
        .collect();
    Deployment {
        key,
        image: linked.image,
        map: linked.map,
        jobs,
    }
}

/// One cold-cache fleet verification pass.
fn run(d: &Deployment, threads: usize) -> usize {
    let verifier = Verifier::builder()
        .key(d.key.clone())
        .image(d.image.clone())
        .map(d.map.clone())
        .build()
        .expect("key/image/map are all set");
    let outcomes = verifier
        .fleet(BatchOptions::with_threads(threads))
        .run(d.jobs.clone());
    assert!(outcomes.iter().all(|o| o.accepted()), "fleet must verify");
    outcomes.len()
}

fn main() {
    let args = BenchArgs::parse();
    let group = BenchGroup::new("obs").samples(if args.quick { 3 } else { 10 });
    let mut report = BenchReport::default();

    // -- claim 1: disabled event() is a load + branch ------------------
    rap_obs::disable_tracing();
    let disabled_event = group.bench("event_disabled_x1024", || {
        for i in 0..EVENTS_PER_ITER {
            rap_obs::event("obs_bench_noop", i, 0);
        }
    });
    println!(
        "  disabled event(): ~{:.2} ns/site",
        disabled_event.median.as_nanos() as f64 / EVENTS_PER_ITER as f64
    );
    report.record("obs/event_disabled_x1024", disabled_event);

    let counter_inc = group.bench("counter_inc_x1024", || {
        for _ in 0..EVENTS_PER_ITER {
            rap_obs::counter!("obs_bench_ctr_total").inc();
        }
    });
    println!(
        "  counter!().inc(): ~{:.2} ns/site",
        counter_inc.median.as_nanos() as f64 / EVENTS_PER_ITER as f64
    );
    report.record("obs/counter_inc_x1024", counter_inc);

    // -- claim 2: fleet throughput, disabled vs enabled-and-draining ---
    //
    // The two configurations are sampled in *interleaved* rounds (one
    // disabled measurement, then one enabled) so slow machine drift —
    // frequency scaling, cache warmth — hits both sides equally and
    // cancels out of the median comparison.
    let devices = if args.quick { 4 } else { 16 };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(4);
    let (rounds, reps) = if args.quick { (9, 5) } else { (15, 10) };
    let d = deployment(devices);

    let time_reps = |reps: u32| {
        let start = std::time::Instant::now();
        for _ in 0..reps {
            std::hint::black_box(run(&d, threads));
        }
        start.elapsed() / reps
    };

    // Warm both paths once before sampling.
    rap_obs::disable_tracing();
    let _ = time_reps(1);
    rap_obs::enable_tracing(0);
    let _ = time_reps(1);
    let _ = rap_obs::drain_events();

    let mut dis_samples = Vec::with_capacity(rounds);
    let mut en_samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        rap_obs::disable_tracing();
        let _ = rap_obs::drain_events();
        dis_samples.push(time_reps(reps));

        rap_obs::enable_tracing(0);
        en_samples.push(time_reps(reps));
        let events = rap_obs::drain_events();
        assert!(!events.is_empty(), "enabled collector must record");
    }
    rap_obs::disable_tracing();
    let _ = rap_obs::drain_events();

    let disabled = rap_bench::harness::Stats::from_samples(dis_samples, u64::from(reps));
    let enabled = rap_bench::harness::Stats::from_samples(en_samples, u64::from(reps));
    report.record("obs/fleet_tracing_disabled", disabled);
    report.record("obs/fleet_tracing_enabled_drained", enabled);

    let ratio = disabled.median.as_secs_f64() / enabled.median.as_secs_f64();
    println!(
        "  fleet medians ({rounds} interleaved rounds x {reps} passes): \
         disabled {:?} vs enabled+drained {:?} (ratio {ratio:.3})",
        disabled.median, enabled.median
    );
    // The 2% comparison needs a host where the two interleaved fleets
    // actually run in parallel; on 1-2 cores the medians are dominated
    // by scheduler noise (observed swings past 7% either way), so the
    // gate is reported but not enforced there — same policy as the
    // scaling bench's speedup gate.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 4 {
        assert!(
            disabled.median.as_secs_f64() <= enabled.median.as_secs_f64() * 1.02,
            "disabled instrumentation must be within 2% of the enabled collector \
             (disabled {:?}, enabled {:?})",
            disabled.median,
            enabled.median
        );
        println!("  OK: disabled instrumentation within 2% of enabled-and-draining");
    } else {
        println!(
            "  gate: skipped — host has {cores} core(s), the interleaved \
             comparison is noise-bound here (measured ratio {ratio:.3})"
        );
    }

    if let Some(path) = &args.json_out {
        report.write(path).expect("write bench json");
        println!("wrote {path}");
    }
}
