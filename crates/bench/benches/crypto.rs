//! Crypto-substrate benches: the RoT's hash/MAC primitives as used for
//! `H_MEM` measurement and report authentication.

use std::hint::black_box;

use rap_bench::harness::BenchGroup;
use rap_crypto::{hmac_sha256, sha256, HmacSha256};

fn bench_sha256() {
    let group = BenchGroup::new("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xA5u8; size];
        group.bench(&format!("{size}B"), || black_box(sha256(&data)));
    }
}

fn bench_hmac() {
    let group = BenchGroup::new("hmac_sha256");
    let key = b"device-key";
    for size in [64usize, 4096] {
        let data = vec![0x5Au8; size];
        group.bench(&format!("{size}B"), || black_box(hmac_sha256(key, &data)));
    }
    // Incremental report-style MAC (header + many small log chunks).
    group.bench("incremental_report", || {
        let chunk = [0xEEu8; 8];
        let mut mac = HmacSha256::new(key);
        mac.update(b"RAP-TRACK-REPORT-V1");
        for _ in 0..512 {
            mac.update(&chunk);
        }
        black_box(mac.finalize())
    });
}

fn main() {
    bench_sha256();
    bench_hmac();
}
