//! Crypto-substrate benches: the RoT's hash/MAC primitives as used for
//! `H_MEM` measurement and report authentication.

use criterion::{Criterion, Throughput, criterion_group, criterion_main};
use std::hint::black_box;

use rap_crypto::{HmacSha256, hmac_sha256, sha256};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| black_box(sha256(&data)))
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let mut group = c.benchmark_group("hmac_sha256");
    let key = b"device-key";
    for size in [64usize, 4096] {
        let data = vec![0x5Au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| black_box(hmac_sha256(key, &data)))
        });
    }
    // Incremental report-style MAC (header + many small log chunks).
    group.bench_function("incremental_report", |b| {
        let chunk = [0xEEu8; 8];
        b.iter(|| {
            let mut mac = HmacSha256::new(key);
            mac.update(b"RAP-TRACK-REPORT-V1");
            for _ in 0..512 {
                mac.update(&chunk);
            }
            black_box(mac.finalize())
        })
    });
    group.finish();
}

criterion_group!(crypto, bench_sha256, bench_hmac);
criterion_main!(crypto);
