//! Fleet verification throughput: reports/sec for the batch verifier
//! at 1 vs N worker threads, over attestations replicated across a
//! simulated device fleet running the same deployed binary.
//!
//! Prints reports/sec per configuration, the N-thread speedup and the
//! replay-cache counters (the acceptance target for this harness is a
//! ≥ 3x speedup at 8 workers on an 8-way host).
//!
//! `--quick` shrinks the fleet for CI smoke runs; `--json <path>`
//! writes median/p95 per thread configuration (`BENCH_fleet.json`).

use rap_bench::harness::{BenchArgs, BenchGroup, BenchReport};
use rap_link::{link, LinkOptions};
use rap_track::{device_key, BatchOptions, CfaEngine, Challenge, EngineConfig, FleetJob, Verifier};

/// Devices simulated per workload.
const FLEET_PER_WORKLOAD: usize = 24;

struct Deployment {
    verifier_key: rap_track::Key,
    image: armv8m_isa::Image,
    map: rap_link::LinkMap,
    jobs: Vec<FleetJob>,
}

/// Attests each workload once and replicates the stream across a
/// simulated fleet of `per_workload` devices (same binary, same
/// challenge round).
fn deployments(per_workload: usize) -> Vec<Deployment> {
    workloads::all()
        .iter()
        .map(|w| {
            let linked = link(&w.module, 0, LinkOptions::default()).expect("workload links");
            let key = device_key("fleet-bench");
            let engine = CfaEngine::new(key.clone());
            let chal = Challenge::from_seed(7);
            let mut machine = mcu_sim::Machine::new(linked.image.clone());
            (w.attach)(&mut machine);
            let att = engine
                .attest(
                    &mut machine,
                    &linked.map,
                    chal,
                    EngineConfig {
                        max_instrs: w.max_instrs * 2,
                        // Partial reports via the MTB_FLOW watermark:
                        // the long workloads outgrow one 512-entry
                        // buffer, and multi-report streams are the
                        // realistic fleet shape anyway.
                        watermark: Some(256),
                    },
                )
                .expect("workload attests");
            let jobs = (0..per_workload)
                .map(|device| FleetJob {
                    device: format!("{}-{device:03}", w.name),
                    chal,
                    reports: att.reports.clone(),
                })
                .collect();
            Deployment {
                verifier_key: key,
                image: linked.image,
                map: linked.map,
                jobs,
            }
        })
        .collect()
}

/// Verifies every deployment's fleet with `threads` workers on a fresh
/// (cold-cache) verifier; returns the total report count.
fn run_fleet(deployments: &[Deployment], threads: usize) -> usize {
    let mut reports = 0usize;
    for d in deployments {
        let verifier = Verifier::builder()
            .key(d.verifier_key.clone())
            .image(d.image.clone())
            .map(d.map.clone())
            .build()
            .expect("key/image/map are all set");
        let outcomes = verifier
            .fleet(BatchOptions::with_threads(threads))
            .run(d.jobs.clone());
        assert!(
            outcomes.iter().all(|o| o.accepted()),
            "benign fleet must verify"
        );
        reports += d.jobs.iter().map(|j| j.reports.len()).sum::<usize>();
    }
    reports
}

fn main() {
    let args = BenchArgs::parse();
    let per_workload = if args.quick { 4 } else { FLEET_PER_WORKLOAD };
    let mut deployments = deployments(per_workload);
    if args.quick {
        deployments.truncate(2);
    }
    let total_jobs: usize = deployments.iter().map(|d| d.jobs.len()).sum();
    let total_reports: usize = deployments
        .iter()
        .flat_map(|d| d.jobs.iter())
        .map(|j| j.reports.len())
        .sum();
    println!(
        "fleet: {} deployments x {per_workload} devices = {total_jobs} streams \
         (host parallelism: {})",
        deployments.len(),
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // Cache-effectiveness probe: one deployment, shared verifier.
    let probe = &deployments[0];
    let verifier = Verifier::builder()
        .key(probe.verifier_key.clone())
        .image(probe.image.clone())
        .map(probe.map.clone())
        .build()
        .expect("key/image/map are all set");
    let _ = verifier
        .fleet(BatchOptions::default())
        .run(probe.jobs.clone());
    let stats = verifier.stats();
    println!(
        "replay cache ({}): {:.0}% hit rate, {} cached vs {} live steps",
        probe.jobs[0].device,
        stats.hit_rate() * 100.0,
        stats.cached_steps,
        stats.live_steps
    );

    let group = BenchGroup::new("fleet").samples(if args.quick { 3 } else { 5 });
    let mut report = BenchReport::default();
    let thread_counts: &[usize] = if args.quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut baseline = 0.0f64;
    for &threads in thread_counts {
        let case = format!("threads_{threads}");
        let stats = group.bench(&case, || run_fleet(&deployments, threads));
        let per_sec = total_reports as f64 / stats.median.as_secs_f64();
        if threads == 1 {
            baseline = per_sec;
        }
        println!(
            "threads {threads}: {total_reports} reports, median {per_sec:.0} reports/sec (x{:.2})",
            per_sec / baseline
        );
        report.record(&format!("fleet/{case}"), stats);
    }
    if let Some(path) = &args.json_out {
        report.write(path).expect("write bench json");
        println!("wrote {path}");
    }
}
