//! Fleet-verifier scaling matrix: wall time and speedup at 1/2/4/8
//! worker threads over the workload suite, with a regression gate.
//!
//! This is the acceptance harness for the batch-layer contention work
//! (two-level replay cache, atomic-ticket dispenser, merge-at-join
//! stats): each case re-verifies the same fleet with a different pool
//! size, and `speedup_vs_1` is the 1-thread median divided by the
//! case's median.
//!
//! * `--quick` shrinks the fleet and runs threads {1, 2, 4} only — the
//!   `threads_2` row gives small hosts an attributable scaling point;
//! * `--json <path>` writes `BENCH_scaling.json` with `speedup_vs_1`
//!   per case;
//! * `--enforce` exits non-zero if the 4-thread speedup is below 1.5×
//!   — skipped (with a note) on hosts with fewer than 4 cores, where
//!   the pool cannot physically scale. Under `--enforce`, a case whose
//!   thread count exceeds the host's parallelism records
//!   `speedup_skipped` instead of `speedup_vs_1`: a sub-1× "speedup"
//!   measured on an oversubscribed host is a fact about the host, not
//!   the pool, and committing it as a figure misleads.
//!
//! The final markdown table is pasted into README §"Scaling".

use rap_bench::harness::{BenchArgs, BenchGroup, BenchReport};
use rap_link::{link, LinkOptions};
use rap_obs::Json;
use rap_track::{device_key, BatchOptions, CfaEngine, Challenge, EngineConfig, FleetJob, Verifier};

/// Devices simulated per workload (full mode).
const FLEET_PER_WORKLOAD: usize = 16;

/// The gate: minimum acceptable 4-thread speedup over 1 thread.
const MIN_SPEEDUP_4: f64 = 1.5;

struct Deployment {
    verifier_key: rap_track::Key,
    image: armv8m_isa::Image,
    map: rap_link::LinkMap,
    jobs: Vec<FleetJob>,
}

/// Attests each workload once and replicates the stream across
/// `per_workload` simulated devices (same binary, same challenge
/// round) — the same fleet shape as `benches/fleet.rs`.
fn deployments(per_workload: usize) -> Vec<Deployment> {
    workloads::all()
        .iter()
        .map(|w| {
            let linked = link(&w.module, 0, LinkOptions::default()).expect("workload links");
            let key = device_key("scaling-bench");
            let engine = CfaEngine::new(key.clone());
            let chal = Challenge::from_seed(7);
            let mut machine = mcu_sim::Machine::new(linked.image.clone());
            (w.attach)(&mut machine);
            let att = engine
                .attest(
                    &mut machine,
                    &linked.map,
                    chal,
                    EngineConfig {
                        max_instrs: w.max_instrs * 2,
                        watermark: Some(256),
                    },
                )
                .expect("workload attests");
            let jobs = (0..per_workload)
                .map(|device| FleetJob {
                    device: format!("{}-{device:03}", w.name),
                    chal,
                    reports: att.reports.clone(),
                })
                .collect();
            Deployment {
                verifier_key: key,
                image: linked.image,
                map: linked.map,
                jobs,
            }
        })
        .collect()
}

/// Verifies every deployment's fleet with `threads` workers on a fresh
/// (cold-cache) verifier per deployment.
fn run_fleet(deployments: &[Deployment], threads: usize) {
    for d in deployments {
        let verifier = Verifier::builder()
            .key(d.verifier_key.clone())
            .image(d.image.clone())
            .map(d.map.clone())
            .build()
            .expect("key/image/map are all set");
        let outcomes = verifier
            .fleet(BatchOptions::with_threads(threads))
            .run(d.jobs.clone());
        assert!(
            outcomes.iter().all(|o| o.accepted()),
            "benign fleet must verify"
        );
    }
}

fn main() {
    let args = BenchArgs::parse();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let per_workload = if args.quick { 4 } else { FLEET_PER_WORKLOAD };
    let mut deployments = deployments(per_workload);
    if args.quick {
        deployments.truncate(2);
    }
    let total_jobs: usize = deployments.iter().map(|d| d.jobs.len()).sum();
    println!(
        "scaling: {} deployments x {per_workload} devices = {total_jobs} streams \
         (host parallelism: {cores})",
        deployments.len()
    );

    let thread_counts: &[usize] = if args.quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8]
    };
    let group = BenchGroup::new("fleet").samples(if args.quick { 3 } else { 5 });
    let mut report = BenchReport::default();
    let mut rows: Vec<(usize, rap_bench::harness::Stats, Option<f64>)> = Vec::new();
    let mut baseline_median = 0.0f64;
    for &threads in thread_counts {
        let case = format!("threads_{threads}");
        let stats = group.bench(&case, || run_fleet(&deployments, threads));
        let median = stats.median.as_secs_f64();
        if threads == 1 {
            baseline_median = median;
        }
        let measured = if median > 0.0 {
            baseline_median / median
        } else {
            f64::INFINITY
        };
        // Refuse to record a speedup the host could not have produced:
        // with fewer cores than pool threads the figure measures
        // oversubscription, not the dispatcher.
        let speedup = if !args.enforce || cores >= threads {
            Some(measured)
        } else {
            println!(
                "note: threads_{threads} speedup not recorded — host has {cores} core(s) \
                 (measured {measured:.2}x would reflect oversubscription)"
            );
            None
        };
        let mut extras = vec![("threads", Json::Uint(threads as u64))];
        match speedup {
            Some(s) => extras.push(("speedup_vs_1", Json::Num(s))),
            None => extras.push((
                "speedup_skipped",
                Json::Str(format!("host has {cores} core(s) < {threads} threads")),
            )),
        }
        report.record_with(&format!("fleet/{case}"), stats, extras);
        rows.push((threads, stats, speedup));
    }

    // Markdown table for README §"Scaling".
    println!("\n| threads | median | p95 | speedup vs 1 |");
    println!("|---:|---:|---:|---:|");
    for (threads, stats, speedup) in &rows {
        let speedup = match speedup {
            Some(s) => format!("{s:.2}×"),
            None => "— (host-limited)".to_string(),
        };
        println!(
            "| {threads} | {:.1}µs | {:.1}µs | {speedup} |",
            stats.median.as_nanos() as f64 / 1_000.0,
            stats.p95.as_nanos() as f64 / 1_000.0,
        );
    }

    if let Some(path) = &args.json_out {
        report.write(path).expect("write bench json");
        println!("wrote {path}");
    }

    if args.enforce {
        let four = rows.iter().find(|(t, _, _)| *t == 4);
        match four {
            Some((_, _, Some(speedup))) => {
                if *speedup < MIN_SPEEDUP_4 {
                    eprintln!(
                        "FAIL: 4-thread speedup {speedup:.2}x is below the \
                         {MIN_SPEEDUP_4}x gate (host parallelism: {cores})"
                    );
                    std::process::exit(1);
                }
                println!("gate: 4-thread speedup {speedup:.2}x >= {MIN_SPEEDUP_4}x — ok");
            }
            Some((_, _, None)) => {
                println!(
                    "gate: skipped — host has {cores} core(s), a 4-thread pool cannot \
                     scale here (speedup not recorded)"
                );
            }
            None => println!("gate: skipped — no threads_4 case in this run"),
        }
    }
}
