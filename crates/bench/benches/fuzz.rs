//! Fuzz-throughput bench: how many full differential cases (generate →
//! run plain → link → attest → verify ×3 paths → mutate) the harness
//! pushes through per second. This is the number that decides how much
//! coverage a CI minute buys, so regressions here directly shrink the
//! fuzzing budget.
//!
//! `--quick` shrinks iteration counts for CI smoke runs; `--json
//! <path>` writes the machine-readable stats.

use std::hint::black_box;

use rap_bench::harness::{BenchArgs, BenchGroup, BenchReport};
use rap_fuzz::gen::Program;
use rap_fuzz::rng::Rng;
use rap_fuzz::{run, FuzzConfig};

fn main() {
    let args = BenchArgs::parse();
    let group = BenchGroup::new("fuzz").samples(if args.quick { 3 } else { 5 });
    let mut report = BenchReport::default();

    // Generation + lowering alone: the cost floor of a case.
    let stats = group.bench("generate_lower", || {
        let mut rng = Rng::new(0xBEEF);
        let mut bytes = 0usize;
        for _ in 0..32 {
            let p = Program::generate(&mut rng);
            bytes += p.lower().assemble(0).expect("assembles").bytes().len();
        }
        black_box(bytes)
    });
    println!(
        "generate+lower: median {:.0} programs/sec",
        32.0 / stats.median.as_secs_f64()
    );
    report.record("fuzz/generate_lower", stats);

    // Full campaign cases, the headline throughput.
    let iters = if args.quick { 10 } else { 50 };
    let stats = group.bench("full_case", || {
        let summary = run(&FuzzConfig {
            seed: 0xBE7C,
            iters,
            ..FuzzConfig::default()
        });
        assert!(summary.failures.is_empty(), "bench campaign must pass");
        black_box(summary.cases_run)
    });
    println!(
        "full differential case: median {:.0} cases/sec",
        iters as f64 / stats.median.as_secs_f64()
    );
    report.record("fuzz/full_case", stats);

    if let Some(path) = &args.json_out {
        report.write(path).expect("write bench json");
        println!("wrote {path}");
    }
}
