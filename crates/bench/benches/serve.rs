//! Loopback service saturation: challenge/attest/verdict rounds per
//! second through `rap-serve` at 1..=8 concurrent clients, comparing
//! two connection disciplines against a shared server:
//!
//! * `oneshot` — the pre-pipelining protocol shape: every round opens
//!   a fresh connection, runs one `HELLO`/`CHALLENGE`/`ATTEST`/
//!   `VERDICT` exchange and disconnects;
//! * `pipelined` — one persistent connection per client with a window
//!   of rounds in flight (`Connection::pipelined`).
//!
//! Both disciplines share a cached-execution responder over the small
//! `syringe` workload: the workload is executed once up front and each
//! challenge only re-signs the recorded log (only the HMAC binds the
//! challenge), so per-round verify cost is tiny and the measured
//! difference isolates per-connection protocol overhead — TCP setup,
//! the accept-loop poll interval, handshake round-trips and session
//! setup — which is exactly what pipelining and resumption eliminate.
//!
//! Overloaded connects are shed with `ERROR busy` server-side; the
//! client's bounded retry absorbs them, so shed load shows up as tail
//! latency rather than failures.
//!
//! * `--quick` runs clients {1, 8} with fewer rounds;
//! * `--json <path>` writes `BENCH_serve.json` with
//!   `verifications_per_sec` and client-observed `p99_round_ns` per
//!   case (plus `host_cores` at the top level);
//! * `--enforce` exits non-zero unless pipelined throughput at 8
//!   clients is at least [`MIN_PIPELINE_SPEEDUP_8`]× the oneshot
//!   figure — the loopback target the connection rework is gated on.
//!
//! A trailing pair of back-to-back pipelined_8 runs measures the
//! telemetry plane: admin listener off vs. on with a 1/s scraper
//! (JSON snapshot + exemplar ring). The throughput delta is recorded
//! as `admin_scrape_overhead_pct` and gated at
//! [`MAX_ADMIN_OVERHEAD_PCT`] under `--enforce` on multi-core hosts.

use std::sync::Mutex;
use std::time::Instant;

use rap_bench::harness::{BenchArgs, BenchGroup, BenchReport};
use rap_link::{link, LinkOptions, LinkedProgram};
use rap_obs::Json;
use rap_serve::{AttestClient, ClientConfig, Server, ServerConfig};
use rap_track::{device_key, CfaEngine, Challenge, EngineConfig, Key, Report, Verifier};

/// Rounds per client per sample (full mode).
const ROUNDS_PER_CLIENT: usize = 16;

/// Pipeline window requested by pipelined-mode clients.
const WINDOW: u16 = 8;

/// The gate: minimum pipelined-over-oneshot throughput ratio at 8
/// clients on loopback.
const MIN_PIPELINE_SPEEDUP_8: f64 = 3.0;

/// The telemetry gate: maximum pipelined-throughput regression at 8
/// clients with the admin plane bound and scraped once per second.
const MAX_ADMIN_OVERHEAD_PCT: f64 = 2.0;

fn bench_key() -> Key {
    device_key("serve-bench")
}

fn deployed() -> (LinkedProgram, workloads::Workload) {
    let w = workloads::by_name("syringe").expect("syringe workload exists");
    let linked = link(&w.module, 0, LinkOptions::default()).expect("workload links");
    (linked, w)
}

fn bench_verifier(linked: &LinkedProgram) -> Verifier {
    Verifier::builder()
        .key(bench_key())
        .image(linked.image.clone())
        .map(linked.map.clone())
        .build()
        .expect("key/image/map are all set")
}

/// Executes the workload once and keeps the evidence; responding to a
/// challenge re-signs the recorded logs under it (the HMAC is the only
/// challenge-dependent part of a report), so per-round prover cost is
/// identical across disciplines and small enough that protocol
/// overhead dominates the measurement.
struct CachedResponder {
    reports: Vec<Report>,
}

impl CachedResponder {
    fn new(linked: &LinkedProgram, w: &workloads::Workload) -> CachedResponder {
        let engine = CfaEngine::new(bench_key());
        let mut machine = mcu_sim::Machine::new(linked.image.clone());
        (w.attach)(&mut machine);
        let reports = engine
            .attest(
                &mut machine,
                &linked.map,
                Challenge::from_seed(0),
                EngineConfig {
                    max_instrs: w.max_instrs * 2,
                    watermark: Some(256),
                },
            )
            .expect("benign attestation runs")
            .reports;
        CachedResponder { reports }
    }

    fn respond(&self, chal: Challenge) -> Vec<Report> {
        self.reports
            .iter()
            .enumerate()
            .map(|(seq, r)| {
                Report::new(
                    &bench_key(),
                    chal,
                    r.h_mem,
                    r.log.clone(),
                    seq as u32,
                    r.is_final,
                    r.overflow,
                )
            })
            .collect()
    }
}

fn bench_client(addr: std::net::SocketAddr, window: u16) -> AttestClient {
    AttestClient::new(
        addr.to_string(),
        ClientConfig {
            retries: 8,
            backoff_base: std::time::Duration::from_millis(1),
            backoff_cap: std::time::Duration::from_millis(20),
            read_timeout: std::time::Duration::from_secs(30),
            window,
            ..ClientConfig::default()
        },
    )
}

/// One oneshot sample: every round is its own connection. Each round's
/// client-observed latency (connect through verdict) lands in `lat`.
fn drive_oneshot(
    addr: std::net::SocketAddr,
    responder: &CachedResponder,
    clients: usize,
    rounds: usize,
    lat: &Mutex<Vec<u64>>,
) {
    std::thread::scope(|scope| {
        for i in 0..clients {
            scope.spawn(move || {
                let client = bench_client(addr, 1);
                let mut local = Vec::with_capacity(rounds);
                for _ in 0..rounds {
                    let t0 = Instant::now();
                    let mut conn = client
                        .open(&format!("oneshot-{i}"))
                        .expect("connection opens");
                    let verdict = conn
                        .round(|chal| responder.respond(chal))
                        .expect("round completes");
                    assert!(verdict.accepted, "benign round must verify: {verdict:?}");
                    local.push(t0.elapsed().as_nanos() as u64);
                }
                lat.lock().unwrap().extend(local);
            });
        }
    });
}

/// One pipelined sample: each client keeps one connection with
/// [`WINDOW`] rounds in flight. Latency is recorded as the mean
/// per-round time on the connection — individual verdicts overlap, so
/// a per-verdict wall time would double-count waiting.
fn drive_pipelined(
    addr: std::net::SocketAddr,
    responder: &CachedResponder,
    clients: usize,
    rounds: usize,
    lat: &Mutex<Vec<u64>>,
) {
    std::thread::scope(|scope| {
        for i in 0..clients {
            scope.spawn(move || {
                let client = bench_client(addr, WINDOW);
                let mut conn = client
                    .open(&format!("pipelined-{i}"))
                    .expect("connection opens");
                let t0 = Instant::now();
                let verdicts = conn
                    .pipelined(rounds, |chal| responder.respond(chal))
                    .expect("pipelined rounds complete");
                let per_round = (t0.elapsed().as_nanos() as u64) / rounds.max(1) as u64;
                assert!(
                    verdicts.iter().all(|v| v.accepted),
                    "benign rounds must verify"
                );
                lat.lock().unwrap().push(per_round);
            });
        }
    });
}

fn p99(samples: &mut [u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[(samples.len() * 99).div_ceil(100).saturating_sub(1)]
}

fn main() {
    let args = BenchArgs::parse();
    let (linked, w) = deployed();
    let responder = CachedResponder::new(&linked, &w);
    let rounds = if args.quick { 8 } else { ROUNDS_PER_CLIENT };
    let client_counts: &[usize] = if args.quick { &[1, 8] } else { &[1, 2, 4, 8] };

    let group = BenchGroup::new("serve").samples(if args.quick { 2 } else { 3 });
    let mut report = BenchReport::default();
    let mut rows: Vec<(String, rap_bench::harness::Stats, f64, u64)> = Vec::new();
    for &clients in client_counts {
        for mode in ["oneshot", "pipelined"] {
            // A fresh server per case: cold replay cache, clean stats.
            let server = Server::start(
                bench_verifier(&linked),
                "127.0.0.1:0",
                ServerConfig {
                    threads: 4,
                    window: WINDOW,
                    session_secret: b"serve-bench-secret".to_vec(),
                    ..ServerConfig::default()
                },
            )
            .expect("server binds");
            let addr = server.local_addr();

            let latencies = Mutex::new(Vec::new());
            let case = format!("{mode}_{clients}");
            let stats = group.bench(&case, || match mode {
                "oneshot" => drive_oneshot(addr, &responder, clients, rounds, &latencies),
                _ => drive_pipelined(addr, &responder, clients, rounds, &latencies),
            });
            let median = stats.median.as_secs_f64();
            let per_sec = if median > 0.0 {
                (clients * rounds) as f64 / median
            } else {
                f64::INFINITY
            };
            let p99_ns = p99(&mut latencies.into_inner().unwrap());
            report.record_with(
                &format!("serve/{case}"),
                stats,
                [
                    ("mode", Json::Str(mode.to_owned())),
                    ("clients", Json::Uint(clients as u64)),
                    ("rounds_per_client", Json::Uint(rounds as u64)),
                    ("window", Json::Uint(u64::from(WINDOW))),
                    ("verifications_per_sec", Json::Num(per_sec)),
                    ("p99_round_ns", Json::Uint(p99_ns)),
                ],
            );
            rows.push((case, stats, per_sec, p99_ns));

            let server_stats = server.shutdown();
            assert_eq!(server_stats.verdicts_rejected, 0, "{server_stats:?}");
        }
    }

    // Markdown table for README §"Remote attestation service".
    println!("\n| case | median sample | p99 round | verifications/s |");
    println!("|---|---:|---:|---:|");
    for (case, stats, per_sec, p99_ns) in &rows {
        println!(
            "| {case} | {:.1}ms | {:.2}ms | {per_sec:.0} |",
            stats.median.as_nanos() as f64 / 1_000_000.0,
            *p99_ns as f64 / 1_000_000.0,
        );
    }

    // Telemetry-plane overhead: two more back-to-back pipelined_8
    // runs, the first with the admin plane off (the disabled-cost
    // baseline), the second with the admin listener bound and a
    // scraper pulling a JSON snapshot + the exemplar ring once per
    // second — the deployment shape `rap top` creates. Throughput
    // under scraping must stay within [`MAX_ADMIN_OVERHEAD_PCT`] of
    // the baseline (enforced only on hosts with enough cores that the
    // scraper thread is not stealing the load generator's CPU).
    let mut admin_per_sec = Vec::new();
    for (case, with_admin) in [("pipelined_8_base", false), ("pipelined_8_admin", true)] {
        let server = Server::start(
            bench_verifier(&linked),
            "127.0.0.1:0",
            ServerConfig {
                threads: 4,
                window: WINDOW,
                session_secret: b"serve-bench-secret".to_vec(),
                admin_addr: with_admin.then(|| "127.0.0.1:0".to_string()),
                ..ServerConfig::default()
            },
        )
        .expect("server binds");
        let addr = server.local_addr();

        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let scraper = server.admin_addr().map(|admin_addr| {
                let stop = &stop;
                scope.spawn(move || {
                    let client = rap_serve::AdminClient::new(admin_addr.to_string());
                    loop {
                        if let Ok(mut conn) = client.connect() {
                            let _ = conn.stats(rap_serve::StatsFormat::Json);
                            let _ = conn.exemplars();
                        }
                        // ~1 scrape/second, with a fast stop path.
                        for _ in 0..100 {
                            if stop.load(std::sync::atomic::Ordering::Relaxed) {
                                return;
                            }
                            std::thread::sleep(std::time::Duration::from_millis(10));
                        }
                    }
                })
            });

            let latencies = Mutex::new(Vec::new());
            let stats = group.bench(case, || {
                drive_pipelined(addr, &responder, 8, rounds, &latencies)
            });
            let median = stats.median.as_secs_f64();
            let per_sec = if median > 0.0 {
                (8 * rounds) as f64 / median
            } else {
                f64::INFINITY
            };
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            if let Some(handle) = scraper {
                handle.join().expect("scraper joins");
            }

            let mut extras = vec![
                ("mode", Json::Str("pipelined".to_owned())),
                ("clients", Json::Uint(8)),
                ("rounds_per_client", Json::Uint(rounds as u64)),
                ("admin_scraped", Json::Bool(with_admin)),
                ("verifications_per_sec", Json::Num(per_sec)),
            ];
            if with_admin {
                let base = admin_per_sec[0];
                let overhead_pct = if base > 0.0 {
                    (1.0 - per_sec / base) * 100.0
                } else {
                    0.0
                };
                println!(
                    "admin scrape overhead: {overhead_pct:.2}% \
                     ({base:.0} -> {per_sec:.0} verifications/s)"
                );
                extras.push(("admin_scrape_overhead_pct", Json::Num(overhead_pct)));
                // On small hosts the scraper competes with the load
                // generator for cores and the comparison measures the
                // scheduler, not the server; only gate where the
                // signal is real.
                if args.enforce
                    && rap_bench::harness::host_cores() >= 4
                    && overhead_pct > MAX_ADMIN_OVERHEAD_PCT
                {
                    eprintln!(
                        "FAIL: admin scraping costs {overhead_pct:.2}% pipelined throughput, \
                         above the {MAX_ADMIN_OVERHEAD_PCT}% gate"
                    );
                    std::process::exit(1);
                }
            }
            report.record_with(&format!("serve/{case}"), stats, extras);
            admin_per_sec.push(per_sec);
        });

        let server_stats = server.shutdown();
        assert_eq!(server_stats.verdicts_rejected, 0, "{server_stats:?}");
    }

    let throughput = |name: &str| rows.iter().find(|(c, ..)| c == name).map(|(_, _, t, _)| *t);
    if let (Some(oneshot), Some(pipelined)) = (throughput("oneshot_8"), throughput("pipelined_8")) {
        let ratio = pipelined / oneshot;
        println!("pipelined_8 / oneshot_8 throughput: {ratio:.2}x");
        if args.enforce && ratio < MIN_PIPELINE_SPEEDUP_8 {
            eprintln!(
                "FAIL: pipelined throughput at 8 clients is {ratio:.2}x oneshot, \
                 below the {MIN_PIPELINE_SPEEDUP_8}x gate"
            );
            std::process::exit(1);
        }
        if args.enforce {
            println!("gate: pipelined_8 >= {MIN_PIPELINE_SPEEDUP_8}x oneshot_8 — ok");
        }
    } else if args.enforce {
        eprintln!("FAIL: --enforce needs the 8-client oneshot and pipelined cases");
        std::process::exit(1);
    }

    if let Some(path) = &args.json_out {
        report.write(path).expect("write bench json");
        println!("wrote {path}");
    }
}
