//! Loopback service throughput: full challenge/attest/verdict rounds
//! per second through `rap-serve` at 1..=8 concurrent clients, each
//! holding one persistent connection against a shared server.
//!
//! Every round is end-to-end: the server issues a fresh nonce, the
//! client re-attests the `fibcall` workload under that challenge (the
//! prover side is part of the measured loop, exactly as deployed), and
//! the server replays the evidence through the shared-cache verifier.
//!
//! * `--quick` runs clients {1, 4} with fewer rounds;
//! * `--json <path>` writes `BENCH_serve.json` with
//!   `verifications_per_sec` per case.

use std::sync::atomic::{AtomicU64, Ordering};

use rap_bench::harness::{BenchArgs, BenchGroup, BenchReport};
use rap_link::{link, LinkOptions, LinkedProgram};
use rap_obs::Json;
use rap_serve::{AttestClient, ClientConfig, Server, ServerConfig};
use rap_track::{device_key, CfaEngine, Challenge, EngineConfig, Key, Report, Verifier};

/// Rounds per client per sample (full mode).
const ROUNDS_PER_CLIENT: usize = 4;

fn bench_key() -> Key {
    device_key("serve-bench")
}

fn deployed() -> (LinkedProgram, workloads::Workload) {
    let w = workloads::by_name("fibcall").expect("fibcall workload exists");
    let linked = link(&w.module, 0, LinkOptions::default()).expect("workload links");
    (linked, w)
}

fn bench_verifier(linked: &LinkedProgram) -> Verifier {
    Verifier::builder()
        .key(bench_key())
        .image(linked.image.clone())
        .map(linked.map.clone())
        .build()
        .expect("key/image/map are all set")
}

/// Benign responder: re-runs the prover under the server's challenge.
fn respond(linked: &LinkedProgram, w: &workloads::Workload) -> impl Fn(Challenge) -> Vec<Report> {
    let linked = linked.clone();
    let attach = w.attach;
    let max_instrs = w.max_instrs;
    move |chal| {
        let engine = CfaEngine::new(bench_key());
        let mut machine = mcu_sim::Machine::new(linked.image.clone());
        attach(&mut machine);
        engine
            .attest(
                &mut machine,
                &linked.map,
                chal,
                EngineConfig {
                    max_instrs: max_instrs * 2,
                    watermark: Some(256),
                },
            )
            .expect("benign attestation runs")
            .reports
    }
}

/// One sample: `clients` threads, each opening one connection and
/// driving `rounds` challenge/attest/verdict rounds to completion.
fn drive(
    addr: std::net::SocketAddr,
    linked: &LinkedProgram,
    w: &workloads::Workload,
    clients: usize,
    rounds: usize,
) {
    let completed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for i in 0..clients {
            let completed = &completed;
            let linked = &linked;
            let w = &w;
            scope.spawn(move || {
                let client = AttestClient::new(
                    addr.to_string(),
                    ClientConfig {
                        read_timeout: std::time::Duration::from_secs(30),
                        ..ClientConfig::default()
                    },
                );
                let respond = respond(linked, w);
                let mut conn = client
                    .open(&format!("bench-{i}"))
                    .expect("connection opens");
                for _ in 0..rounds {
                    let verdict = conn.round(&respond).expect("round completes");
                    assert!(verdict.accepted, "benign round must verify: {verdict:?}");
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(completed.load(Ordering::Relaxed) as usize, clients * rounds);
}

fn main() {
    let args = BenchArgs::parse();
    let (linked, w) = deployed();
    let rounds = if args.quick { 2 } else { ROUNDS_PER_CLIENT };
    let client_counts: &[usize] = if args.quick {
        &[1, 4]
    } else {
        &[1, 2, 3, 4, 5, 6, 7, 8]
    };

    let group = BenchGroup::new("serve").samples(if args.quick { 2 } else { 3 });
    let mut report = BenchReport::default();
    let mut rows: Vec<(usize, rap_bench::harness::Stats, f64)> = Vec::new();
    for &clients in client_counts {
        // A fresh server per case: cold replay cache, clean stats.
        let server = Server::start(
            bench_verifier(&linked),
            "127.0.0.1:0",
            ServerConfig {
                threads: 8,
                ..ServerConfig::default()
            },
        )
        .expect("server binds");
        let addr = server.local_addr();

        let case = format!("clients_{clients}");
        let stats = group.bench(&case, || drive(addr, &linked, &w, clients, rounds));
        let median = stats.median.as_secs_f64();
        let per_sec = if median > 0.0 {
            (clients * rounds) as f64 / median
        } else {
            f64::INFINITY
        };
        report.record_with(
            &format!("serve/{case}"),
            stats,
            [
                ("clients", Json::Uint(clients as u64)),
                ("rounds_per_client", Json::Uint(rounds as u64)),
                ("verifications_per_sec", Json::Num(per_sec)),
            ],
        );
        rows.push((clients, stats, per_sec));

        let server_stats = server.shutdown();
        assert_eq!(server_stats.verdicts_rejected, 0, "{server_stats:?}");
    }

    // Markdown table for README §"Remote attestation service".
    println!("\n| clients | median sample | p95 | verifications/s |");
    println!("|---:|---:|---:|---:|");
    for (clients, stats, per_sec) in &rows {
        println!(
            "| {clients} | {:.1}ms | {:.1}ms | {per_sec:.0} |",
            stats.median.as_nanos() as f64 / 1_000_000.0,
            stats.p95.as_nanos() as f64 / 1_000_000.0,
        );
    }

    if let Some(path) = &args.json_out {
        report.write(path).expect("write bench json");
        println!("wrote {path}");
    }
}
