//! Simulator-substrate benches: raw interpreter throughput and the
//! cost of the trace fabric (DWT evaluation + MTB recording) per
//! simulated instruction — the host-side analogue of the paper's claim
//! that MTB tracing is free for the target.

use armv8m_isa::{Asm, Reg};
use criterion::{Criterion, Throughput, criterion_group, criterion_main};
use std::hint::black_box;

use mcu_sim::{Machine, NullSecureWorld};
use trace_units::{PcRange, RangeAction};

const LOOP_ITERS: u16 = 10_000;

fn spin_image() -> armv8m_isa::Image {
    let mut a = Asm::new();
    a.func("main");
    a.movi(Reg::R0, LOOP_ITERS);
    a.label("loop");
    a.addi(Reg::R1, Reg::R1, 3);
    a.eor(Reg::R2, Reg::R2, Reg::R1);
    a.subi(Reg::R0, Reg::R0, 1);
    a.cmpi(Reg::R0, 0);
    a.bne("loop");
    a.halt();
    a.into_module().assemble(0).unwrap()
}

fn bench_interpreter(c: &mut Criterion) {
    let image = spin_image();
    let mut group = c.benchmark_group("interpreter");
    let instrs = 2 + LOOP_ITERS as u64 * 5;
    group.throughput(Throughput::Elements(instrs));

    group.bench_function("no_tracing", |b| {
        b.iter(|| {
            let mut m = Machine::new(image.clone());
            black_box(m.run(&mut NullSecureWorld, 10_000_000).unwrap())
        })
    });

    group.bench_function("master_trace", |b| {
        b.iter(|| {
            let mut m = Machine::new(image.clone());
            m.fabric.mtb_mut().set_master_trace(true);
            black_box(m.run(&mut NullSecureWorld, 10_000_000).unwrap())
        })
    });

    group.bench_function("dwt_ranges_armed", |b| {
        b.iter(|| {
            let mut m = Machine::new(image.clone());
            m.fabric
                .dwt_mut()
                .watch_range(PcRange {
                    base: 0,
                    limit: 0x100,
                    action: RangeAction::StopMtb,
                })
                .unwrap();
            m.fabric
                .dwt_mut()
                .watch_range(PcRange {
                    base: 0x100,
                    limit: 0x200,
                    action: RangeAction::StartMtb,
                })
                .unwrap();
            black_box(m.run(&mut NullSecureWorld, 10_000_000).unwrap())
        })
    });
    group.finish();
}

fn bench_assembler(c: &mut Criterion) {
    let mut group = c.benchmark_group("assembler");
    let module = workloads::gps::workload().module;
    group.bench_function("assemble_gps", |b| {
        b.iter(|| black_box(module.assemble(0).unwrap()))
    });
    let image = module.assemble(0).unwrap();
    group.bench_function("decode_gps_image", |b| {
        b.iter(|| {
            black_box(
                armv8m_isa::Image::from_bytes(image.base(), image.bytes().to_vec()).unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(simulator, bench_interpreter, bench_assembler);
criterion_main!(simulator);
