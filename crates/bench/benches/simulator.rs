//! Simulator-substrate benches: raw interpreter throughput and the
//! cost of the trace fabric (DWT evaluation + MTB recording) per
//! simulated instruction — the host-side analogue of the paper's claim
//! that MTB tracing is free for the target.

use std::hint::black_box;

use armv8m_isa::{Asm, Reg};
use mcu_sim::{Machine, NullSecureWorld};
use rap_bench::harness::BenchGroup;
use trace_units::{PcRange, RangeAction};

const LOOP_ITERS: u16 = 10_000;

fn spin_image() -> armv8m_isa::Image {
    let mut a = Asm::new();
    a.func("main");
    a.movi(Reg::R0, LOOP_ITERS);
    a.label("loop");
    a.addi(Reg::R1, Reg::R1, 3);
    a.eor(Reg::R2, Reg::R2, Reg::R1);
    a.subi(Reg::R0, Reg::R0, 1);
    a.cmpi(Reg::R0, 0);
    a.bne("loop");
    a.halt();
    a.into_module().assemble(0).unwrap()
}

fn bench_interpreter() {
    let image = spin_image();
    let group = BenchGroup::new("interpreter");

    group.bench("no_tracing", || {
        let mut m = Machine::new(image.clone());
        black_box(m.run(&mut NullSecureWorld, 10_000_000).unwrap())
    });

    group.bench("master_trace", || {
        let mut m = Machine::new(image.clone());
        m.fabric.mtb_mut().set_master_trace(true);
        black_box(m.run(&mut NullSecureWorld, 10_000_000).unwrap())
    });

    group.bench("dwt_ranges_armed", || {
        let mut m = Machine::new(image.clone());
        m.fabric
            .dwt_mut()
            .watch_range(PcRange {
                base: 0,
                limit: 0x100,
                action: RangeAction::StopMtb,
            })
            .unwrap();
        m.fabric
            .dwt_mut()
            .watch_range(PcRange {
                base: 0x100,
                limit: 0x200,
                action: RangeAction::StartMtb,
            })
            .unwrap();
        black_box(m.run(&mut NullSecureWorld, 10_000_000).unwrap())
    });
}

fn bench_assembler() {
    let group = BenchGroup::new("assembler");
    let module = workloads::gps::workload().module;
    group.bench("assemble_gps", || black_box(module.assemble(0).unwrap()));
    let image = module.assemble(0).unwrap();
    group.bench("decode_gps_image", || {
        black_box(armv8m_isa::Image::from_bytes(image.base(), image.bytes().to_vec()).unwrap())
    });
}

fn main() {
    bench_interpreter();
    bench_assembler();
}
