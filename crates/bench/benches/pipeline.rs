//! Pipeline-stage benches: offline linking, TRACES instrumentation,
//! attestation (simulated execution) and verification (lossless
//! replay), per workload.

use criterion::{BenchmarkId, Criterion, criterion_group, criterion_main};
use std::hint::black_box;

use rap_link::{LinkOptions, link};
use rap_track::{CfaEngine, Challenge, EngineConfig, Verifier, device_key};

fn bench_link(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_link");
    group.sample_size(20);
    for w in workloads::all() {
        group.bench_with_input(BenchmarkId::from_parameter(w.name), &w, |b, w| {
            b.iter(|| black_box(link(&w.module, 0, LinkOptions::default()).unwrap()))
        });
    }
    group.finish();
}

fn bench_instrument(c: &mut Criterion) {
    let mut group = c.benchmark_group("traces_instrument");
    group.sample_size(20);
    for w in workloads::all() {
        group.bench_with_input(BenchmarkId::from_parameter(w.name), &w, |b, w| {
            b.iter(|| {
                black_box(
                    cfa_baselines::instrument(
                        &w.module,
                        0,
                        cfa_baselines::TracesConfig::default(),
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_attest(c: &mut Criterion) {
    let mut group = c.benchmark_group("attest");
    group.sample_size(10);
    for w in workloads::all() {
        let linked = link(&w.module, 0, LinkOptions::default()).unwrap();
        let engine = CfaEngine::new(device_key("bench"));
        group.bench_function(BenchmarkId::from_parameter(w.name), |b| {
            b.iter(|| {
                let mut machine = mcu_sim::Machine::new(linked.image.clone());
                (w.attach)(&mut machine);
                black_box(
                    engine
                        .attest(
                            &mut machine,
                            &linked.map,
                            Challenge::from_seed(0),
                            EngineConfig {
                                max_instrs: w.max_instrs * 2,
                                watermark: Some(448),
                            },
                        )
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify");
    group.sample_size(10);
    for w in workloads::all() {
        let linked = link(&w.module, 0, LinkOptions::default()).unwrap();
        let key = device_key("bench");
        let engine = CfaEngine::new(key.clone());
        let chal = Challenge::from_seed(0);
        let mut machine = mcu_sim::Machine::new(linked.image.clone());
        (w.attach)(&mut machine);
        let att = engine
            .attest(
                &mut machine,
                &linked.map,
                chal,
                EngineConfig {
                    max_instrs: w.max_instrs * 2,
                    watermark: Some(448),
                },
            )
            .unwrap();
        let verifier = Verifier::new(key, linked.image.clone(), linked.map.clone());
        group.bench_function(BenchmarkId::from_parameter(w.name), |b| {
            b.iter(|| black_box(verifier.verify(chal, &att.reports).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(pipeline, bench_link, bench_instrument, bench_attest, bench_verify);
criterion_main!(pipeline);
