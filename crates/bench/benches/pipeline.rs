//! Pipeline-stage benches: offline linking, TRACES instrumentation,
//! attestation (simulated execution) and verification (lossless
//! replay), per workload.

use std::hint::black_box;

use rap_bench::harness::BenchGroup;
use rap_link::{link, LinkOptions};
use rap_track::{device_key, CfaEngine, Challenge, EngineConfig, Verifier};

fn bench_link() {
    let group = BenchGroup::new("offline_link").samples(20);
    for w in workloads::all() {
        group.bench(w.name, || {
            black_box(link(&w.module, 0, LinkOptions::default()).unwrap())
        });
    }
}

fn bench_instrument() {
    let group = BenchGroup::new("traces_instrument").samples(20);
    for w in workloads::all() {
        group.bench(w.name, || {
            black_box(
                cfa_baselines::instrument(&w.module, 0, cfa_baselines::TracesConfig::default())
                    .unwrap(),
            )
        });
    }
}

fn bench_attest() {
    let group = BenchGroup::new("attest").samples(10);
    for w in workloads::all() {
        let linked = link(&w.module, 0, LinkOptions::default()).unwrap();
        let engine = CfaEngine::new(device_key("bench"));
        group.bench(w.name, || {
            let mut machine = mcu_sim::Machine::new(linked.image.clone());
            (w.attach)(&mut machine);
            black_box(
                engine
                    .attest(
                        &mut machine,
                        &linked.map,
                        Challenge::from_seed(0),
                        EngineConfig {
                            max_instrs: w.max_instrs * 2,
                            watermark: Some(448),
                        },
                    )
                    .unwrap(),
            )
        });
    }
}

fn bench_verify() {
    let group = BenchGroup::new("verify").samples(10);
    for w in workloads::all() {
        let linked = link(&w.module, 0, LinkOptions::default()).unwrap();
        let key = device_key("bench");
        let engine = CfaEngine::new(key.clone());
        let chal = Challenge::from_seed(0);
        let mut machine = mcu_sim::Machine::new(linked.image.clone());
        (w.attach)(&mut machine);
        let att = engine
            .attest(
                &mut machine,
                &linked.map,
                chal,
                EngineConfig {
                    max_instrs: w.max_instrs * 2,
                    watermark: Some(448),
                },
            )
            .unwrap();
        let verifier = Verifier::builder()
            .key(key.clone())
            .image(linked.image.clone())
            .map(linked.map.clone())
            .build()
            .expect("key/image/map are all set");
        group.bench(w.name, || {
            black_box(verifier.verify(chal, &att.reports).unwrap())
        });
    }
}

fn main() {
    bench_link();
    bench_instrument();
    bench_attest();
    bench_verify();
}
