//! Audit-chain cost: what sealing every verdict and hash-chaining it
//! to disk adds to the attestation pipeline.
//!
//! Three measurements:
//!
//! * `seal` — sealed [`VerdictRecord`] construction (HMAC over the
//!   canonical encoding), records per second;
//! * `append` — batched [`AuditLog`] appends with one flush per batch,
//!   the exact write discipline `rap-serve` uses per drain tick;
//! * `replay` — offline [`ChainVerifier`] scans of the written log,
//!   with the seal key (the `rap audit verify --key` path).
//!
//! A trailing pair of back-to-back pipelined_8 loopback serve runs
//! measures the end-to-end overhead of `--audit-log`: every round's
//! sealed record appended and flushed once per drain tick. The
//! throughput delta lands in `BENCH_audit.json` as
//! `audit_seal_overhead_pct` and is gated at
//! [`MAX_AUDIT_OVERHEAD_PCT`] under `--enforce` on multi-core hosts.

use std::sync::Mutex;
use std::time::Instant;

use rap_audit::{AuditLog, ChainVerifier};
use rap_bench::harness::{host_cores, BenchArgs, BenchGroup, BenchReport};
use rap_link::{link, LinkOptions, LinkedProgram};
use rap_obs::Json;
use rap_serve::{AttestClient, ClientConfig, Server, ServerConfig};
use rap_track::{
    device_key, verdict_seal_key, CfaEngine, Challenge, EngineConfig, Key, Report, VerdictDraft,
    VerdictRecord, Verifier,
};

/// Rounds per client per sample (full mode).
const ROUNDS_PER_CLIENT: usize = 16;

/// Pipeline window requested by pipelined-mode clients.
const WINDOW: u16 = 8;

/// The gate: maximum pipelined-throughput regression at 8 clients with
/// `--audit-log` sealing and chaining every round.
const MAX_AUDIT_OVERHEAD_PCT: f64 = 5.0;

fn bench_key() -> Key {
    device_key("audit-bench")
}

fn deployed() -> (LinkedProgram, workloads::Workload) {
    let w = workloads::by_name("syringe").expect("syringe workload exists");
    let linked = link(&w.module, 0, LinkOptions::default()).expect("workload links");
    (linked, w)
}

fn bench_verifier(linked: &LinkedProgram) -> Verifier {
    Verifier::builder()
        .key(bench_key())
        .image(linked.image.clone())
        .map(linked.map.clone())
        .build()
        .expect("key/image/map are all set")
}

fn draft(seq: u64) -> VerdictDraft {
    VerdictDraft {
        device: format!("bench-dev-{}", seq % 16),
        chal: Challenge::from_seed(seq),
        accepted: !seq.is_multiple_of(7),
        kind: if seq.is_multiple_of(7) {
            "return-mismatch".to_string()
        } else {
            String::new()
        },
        events: 128,
        steps: 4096,
        cache_hits: seq,
        seq,
        ..VerdictDraft::default()
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rap-audit-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// See `benches/serve.rs` — same cached-execution responder: per-round
/// prover cost is one re-sign, so the audit append cost is not hidden
/// under simulation time.
struct CachedResponder {
    reports: Vec<Report>,
}

impl CachedResponder {
    fn new(linked: &LinkedProgram, w: &workloads::Workload) -> CachedResponder {
        let engine = CfaEngine::new(bench_key());
        let mut machine = mcu_sim::Machine::new(linked.image.clone());
        (w.attach)(&mut machine);
        let reports = engine
            .attest(
                &mut machine,
                &linked.map,
                Challenge::from_seed(0),
                EngineConfig {
                    max_instrs: w.max_instrs * 2,
                    watermark: Some(256),
                },
            )
            .expect("benign attestation runs")
            .reports;
        CachedResponder { reports }
    }

    fn respond(&self, chal: Challenge) -> Vec<Report> {
        self.reports
            .iter()
            .enumerate()
            .map(|(seq, r)| {
                Report::new(
                    &bench_key(),
                    chal,
                    r.h_mem,
                    r.log.clone(),
                    seq as u32,
                    r.is_final,
                    r.overflow,
                )
            })
            .collect()
    }
}

fn drive_pipelined(addr: std::net::SocketAddr, responder: &CachedResponder, rounds: usize) {
    std::thread::scope(|scope| {
        for i in 0..8 {
            scope.spawn(move || {
                let client = AttestClient::new(
                    addr.to_string(),
                    ClientConfig {
                        retries: 8,
                        backoff_base: std::time::Duration::from_millis(1),
                        backoff_cap: std::time::Duration::from_millis(20),
                        read_timeout: std::time::Duration::from_secs(30),
                        window: WINDOW,
                        ..ClientConfig::default()
                    },
                );
                let mut conn = client
                    .open(&format!("pipelined-{i}"))
                    .expect("connection opens");
                let verdicts = conn
                    .pipelined(rounds, |chal| responder.respond(chal))
                    .expect("pipelined rounds complete");
                assert!(
                    verdicts.iter().all(|v| v.accepted),
                    "benign rounds must verify"
                );
            });
        }
    });
}

fn main() {
    let args = BenchArgs::parse();
    let seal_key = verdict_seal_key(&bench_key());
    let batch: usize = if args.quick { 512 } else { 4096 };
    // rap-serve flushes once per drain tick; 32 records per flush is a
    // busy tick at 8 pipelined clients.
    let flush_every = 32;

    let group = BenchGroup::new("audit").samples(if args.quick { 2 } else { 3 });
    let mut report = BenchReport::default();

    // Record sealing (HMAC over the canonical encoding).
    let stats = group.bench("seal", || {
        for seq in 0..batch as u64 {
            std::hint::black_box(VerdictRecord::seal(&seal_key, draft(seq)));
        }
    });
    let seal_per_sec = batch as f64 / stats.median.as_secs_f64();
    report.record_with(
        "audit/seal",
        stats,
        [
            ("records", Json::Uint(batch as u64)),
            ("records_per_sec", Json::Num(seal_per_sec)),
        ],
    );

    // Batched appends, one fsyncless flush per `flush_every` records.
    let records: Vec<VerdictRecord> = (0..batch as u64)
        .map(|seq| VerdictRecord::seal(&seal_key, draft(seq)))
        .collect();
    let log_path = tmp("bench.ralog");
    let stats = group.bench("append", || {
        let mut log = AuditLog::create(&log_path).expect("log creates");
        for chunk in records.chunks(flush_every) {
            for record in chunk {
                log.append_record(record);
            }
            log.flush().expect("flush succeeds");
        }
    });
    let append_per_sec = batch as f64 / stats.median.as_secs_f64();
    report.record_with(
        "audit/append",
        stats,
        [
            ("records", Json::Uint(batch as u64)),
            ("flush_every", Json::Uint(flush_every as u64)),
            ("records_per_sec", Json::Num(append_per_sec)),
        ],
    );

    // Offline replay with seal re-checking (`rap audit verify --key`).
    let log_bytes = std::fs::read(&log_path).expect("log written");
    let verifier = ChainVerifier::with_seal_key(seal_key.clone());
    let stats = group.bench("replay", || {
        let report = verifier.verify_bytes(&log_bytes);
        assert!(report.ok(), "{:?}", report.first_break);
        assert_eq!(report.entries, batch as u64);
    });
    let replay_per_sec = batch as f64 / stats.median.as_secs_f64();
    report.record_with(
        "audit/replay",
        stats,
        [
            ("records", Json::Uint(batch as u64)),
            ("log_bytes", Json::Uint(log_bytes.len() as u64)),
            ("records_per_sec", Json::Num(replay_per_sec)),
        ],
    );

    println!(
        "seal: {seal_per_sec:.0}/s  append: {append_per_sec:.0}/s  replay: {replay_per_sec:.0}/s"
    );

    // End-to-end: pipelined_8 loopback serve, audit off vs. on.
    let (linked, w) = deployed();
    let responder = CachedResponder::new(&linked, &w);
    let rounds = if args.quick { 8 } else { ROUNDS_PER_CLIENT };
    let mut per_secs = Vec::new();
    for (case, with_audit) in [("pipelined_8_base", false), ("pipelined_8_audit", true)] {
        let audit_path = tmp(&format!("{case}.ralog"));
        std::fs::remove_file(&audit_path).ok();
        let server = Server::start(
            bench_verifier(&linked),
            "127.0.0.1:0",
            ServerConfig {
                threads: 4,
                window: WINDOW,
                session_secret: b"audit-bench-secret".to_vec(),
                audit_log: with_audit.then(|| audit_path.clone()),
                ..ServerConfig::default()
            },
        )
        .expect("server binds");
        let addr = server.local_addr();

        let lat = Mutex::new(Vec::<u64>::new());
        let stats = group.bench(case, || {
            let t0 = Instant::now();
            drive_pipelined(addr, &responder, rounds);
            lat.lock().unwrap().push(t0.elapsed().as_nanos() as u64);
        });
        let median = stats.median.as_secs_f64();
        let per_sec = if median > 0.0 {
            (8 * rounds) as f64 / median
        } else {
            f64::INFINITY
        };

        let mut extras = vec![
            ("mode", Json::Str("pipelined".to_owned())),
            ("clients", Json::Uint(8)),
            ("rounds_per_client", Json::Uint(rounds as u64)),
            ("audit", Json::Bool(with_audit)),
            ("verifications_per_sec", Json::Num(per_sec)),
        ];
        if with_audit {
            let base = per_secs[0];
            let overhead_pct = if base > 0.0 {
                (1.0 - per_sec / base) * 100.0
            } else {
                0.0
            };
            println!(
                "audit seal+append overhead: {overhead_pct:.2}% \
                 ({base:.0} -> {per_sec:.0} verifications/s)"
            );
            extras.push(("audit_seal_overhead_pct", Json::Num(overhead_pct)));
            // Like the admin-scrape gate in benches/serve.rs: on small
            // hosts the comparison measures the scheduler, not the
            // append path; only gate where the signal is real.
            if args.enforce && host_cores() >= 4 && overhead_pct > MAX_AUDIT_OVERHEAD_PCT {
                eprintln!(
                    "FAIL: audit logging costs {overhead_pct:.2}% pipelined throughput, \
                     above the {MAX_AUDIT_OVERHEAD_PCT}% gate"
                );
                std::process::exit(1);
            }
            if args.enforce && host_cores() >= 4 {
                println!("gate: audit overhead <= {MAX_AUDIT_OVERHEAD_PCT}% — ok");
            }
        }
        report.record_with(&format!("audit/{case}"), stats, extras);
        per_secs.push(per_sec);

        let server_stats = server.shutdown();
        assert_eq!(server_stats.verdicts_rejected, 0, "{server_stats:?}");
        if with_audit {
            // The log the run produced must itself verify: the bench
            // doubles as an end-to-end integrity check.
            let seal = verdict_seal_key(&bench_key());
            let chain = ChainVerifier::with_seal_key(seal)
                .verify_file(&audit_path)
                .expect("audit log readable");
            assert!(chain.ok(), "served log broke: {:?}", chain.first_break);
            // One entry per served round; the closure runs once per
            // sample (plus warmups), so at least one full batch landed.
            assert!(
                chain.entries >= (8 * rounds) as u64,
                "only {} audit entries for {} rounds per run",
                chain.entries,
                8 * rounds
            );
        }
    }

    if let Some(path) = &args.json_out {
        report.write(path).expect("write bench json");
        println!("wrote {path}");
    }
}
