//! Sub-path speculation dictionary: wire compression and verifier
//! bulk-replay speedup, per workload.
//!
//! For each workload the bench mines a dictionary from one profiling
//! run (exactly what `rap profile` does), then attests the same
//! execution twice — plain and dictionary-compressed — and measures:
//!
//! * `wire_bytes_plain` / `wire_bytes_dict` — encoded report-stream
//!   bytes, and `bytes_saved_pct` between them;
//! * `verify_plain/<w>` / `verify_dict/<w>` — single-stream
//!   verifications per second against a warm verifier (steady-state
//!   service shape: the segment cache and the dictionary macro cache
//!   are both populated), with `verify_speedup` recorded on the dict
//!   case.
//!
//! * `--quick` runs the loop-heavy subset only with fewer samples;
//! * `--json <path>` writes `BENCH_dict.json` (plus `host_cores`);
//! * `--enforce` exits non-zero unless every [`LOOP_HEAVY`] workload
//!   saves at least [`MIN_BYTES_SAVED_PCT`] wire bytes and speeds
//!   verification up by at least [`MIN_VERIFY_SPEEDUP`].

use rap_bench::harness::{BenchArgs, BenchGroup, BenchReport};
use rap_link::{link, LinkOptions, LinkedProgram};
use rap_obs::Json;
use rap_track::{
    device_key, encode_stream, CfaEngine, Challenge, DictParams, EngineConfig, Key, Report,
    SubPathDict, Verifier,
};

/// Partial-report watermark: the 4 KiB MTB SRAM shape the paper's §V-B
/// transmission figures use (448 packets ≈ 3.5 KiB of an 8-byte-packet
/// SRAM), so "wire bytes per report" matches the deployed config.
const WATERMARK: usize = 448;

/// Mining parameters: more entries than the device matcher can be
/// confused by, support ≥3 so one-off paths don't pollute the table.
const PARAMS: DictParams = DictParams {
    top_k: 32,
    min_support: 3,
    max_len: 16,
};

/// The workloads whose CF_Log is dominated by general-loop MTB packets
/// — where the dictionary must pay for itself. The `--enforce` gates
/// apply to these.
const LOOP_HEAVY: &[&str] = &["prime", "crc32", "bubblesort", "matmult", "fir"];

/// Enforced minimum wire-bytes saving on loop-heavy workloads.
const MIN_BYTES_SAVED_PCT: f64 = 30.0;

/// Enforced minimum single-stream verification speedup on loop-heavy
/// workloads.
const MIN_VERIFY_SPEEDUP: f64 = 1.15;

fn bench_key() -> Key {
    device_key("dict-bench")
}

/// One workload's prepared artifacts: both report streams and both
/// verifiers.
struct Prepared {
    name: &'static str,
    plain_reports: Vec<Report>,
    dict_reports: Vec<Report>,
    wire_bytes_plain: usize,
    wire_bytes_dict: usize,
    dict_entries: usize,
    dict_hits: usize,
    verifier_plain: Verifier,
    verifier_dict: Verifier,
    chal: Challenge,
}

fn attest(
    w: &workloads::Workload,
    linked: &LinkedProgram,
    engine: &CfaEngine,
    chal: Challenge,
) -> rap_track::Attestation {
    let mut machine = mcu_sim::Machine::new(linked.image.clone());
    (w.attach)(&mut machine);
    engine
        .attest(
            &mut machine,
            &linked.map,
            chal,
            EngineConfig {
                max_instrs: w.max_instrs * 2,
                watermark: Some(WATERMARK),
            },
        )
        .unwrap_or_else(|e| panic!("{}: attest: {e}", w.name))
}

fn prepare(w: &workloads::Workload) -> Prepared {
    let linked = link(&w.module, 0, LinkOptions::default()).expect("workload links");
    let chal = Challenge::from_seed(42);
    let key = bench_key();

    let plain = attest(w, &linked, &CfaEngine::new(key.clone()), chal);
    let h_mem = plain.reports.first().expect("reports").h_mem;
    let dict = SubPathDict::mine(&plain.combined_log(), h_mem, w.name, PARAMS);

    let compressed = attest(
        w,
        &linked,
        &CfaEngine::new(key.clone()).with_dict(dict.entries().to_vec()),
        chal,
    );
    let dict_hits = compressed
        .reports
        .iter()
        .map(|r| r.log.dict_hits.len())
        .sum();

    let verifier_plain = Verifier::builder()
        .key(key.clone())
        .image(linked.image.clone())
        .map(linked.map.clone())
        .build()
        .expect("required fields set");
    let verifier_dict = Verifier::builder()
        .key(key)
        .image(linked.image.clone())
        .map(linked.map)
        .dict(dict)
        .build()
        .expect("required fields set");

    Prepared {
        name: w.name,
        wire_bytes_plain: encode_stream(&plain.reports).len(),
        wire_bytes_dict: encode_stream(&compressed.reports).len(),
        dict_entries: plainly_usable_entries(&verifier_dict),
        dict_hits,
        plain_reports: plain.reports,
        dict_reports: compressed.reports,
        verifier_plain,
        verifier_dict,
        chal,
    }
}

fn plainly_usable_entries(v: &Verifier) -> usize {
    v.dict().map(SubPathDict::len).unwrap_or(0)
}

fn main() {
    let args = BenchArgs::parse();
    let mut report = BenchReport::default();
    let mut failures: Vec<String> = Vec::new();

    let selected: Vec<workloads::Workload> = workloads::all()
        .into_iter()
        .filter(|w| !args.quick || LOOP_HEAVY.contains(&w.name))
        .collect();

    let group = BenchGroup::new("dict").samples(if args.quick { 3 } else { 7 });

    println!("| workload | wire plain | wire dict | saved | verify speedup |");
    println!("|---|---|---|---|---|");

    for w in &selected {
        let p = prepare(w);
        let saved_pct = if p.wire_bytes_plain > 0 {
            100.0 * (p.wire_bytes_plain.saturating_sub(p.wire_bytes_dict)) as f64
                / p.wire_bytes_plain as f64
        } else {
            0.0
        };

        // Equivalence sanity inside the bench: both streams must accept
        // and agree before their timings mean anything.
        let base = p
            .verifier_plain
            .verify(p.chal, &p.plain_reports)
            .unwrap_or_else(|e| panic!("{}: plain rejected: {e}", p.name));
        let via_dict = p
            .verifier_dict
            .verify(p.chal, &p.dict_reports)
            .unwrap_or_else(|e| panic!("{}: dict rejected: {e}", p.name));
        assert_eq!(base, via_dict, "{}: replay equivalence", p.name);

        let plain_stats = group.bench(&format!("verify_plain/{}", p.name), || {
            p.verifier_plain
                .verify(p.chal, &p.plain_reports)
                .expect("plain verifies")
        });
        let dict_stats = group.bench(&format!("verify_dict/{}", p.name), || {
            p.verifier_dict
                .verify(p.chal, &p.dict_reports)
                .expect("dict verifies")
        });
        let speedup = dict_stats.per_sec() / plain_stats.per_sec();

        println!(
            "| {} | {} B | {} B | {saved_pct:.0}% | {speedup:.2}x |",
            p.name, p.wire_bytes_plain, p.wire_bytes_dict
        );

        report.record_with(
            &format!("dict/verify_plain/{}", p.name),
            plain_stats,
            [(
                "verifications_per_sec",
                Json::Uint(plain_stats.per_sec() as u64),
            )],
        );
        report.record_with(
            &format!("dict/verify_dict/{}", p.name),
            dict_stats,
            [
                (
                    "verifications_per_sec",
                    Json::Uint(dict_stats.per_sec() as u64),
                ),
                ("wire_bytes_plain", Json::Uint(p.wire_bytes_plain as u64)),
                ("wire_bytes_dict", Json::Uint(p.wire_bytes_dict as u64)),
                ("bytes_saved_pct", Json::Num(saved_pct)),
                ("reports", Json::Uint(p.plain_reports.len() as u64)),
                ("dict_entries", Json::Uint(p.dict_entries as u64)),
                ("dict_hits", Json::Uint(p.dict_hits as u64)),
                ("verify_speedup", Json::Num(speedup)),
                ("loop_heavy", Json::Bool(LOOP_HEAVY.contains(&p.name))),
            ],
        );

        if LOOP_HEAVY.contains(&p.name) {
            if saved_pct < MIN_BYTES_SAVED_PCT {
                failures.push(format!(
                    "{}: wire bytes saved {saved_pct:.1}% < {MIN_BYTES_SAVED_PCT}%",
                    p.name
                ));
            }
            if speedup < MIN_VERIFY_SPEEDUP {
                failures.push(format!(
                    "{}: verify speedup {speedup:.2}x < {MIN_VERIFY_SPEEDUP}x",
                    p.name
                ));
            }
        }
    }

    if let Some(path) = &args.json_out {
        report.write(path).expect("write bench json");
        println!("bench json -> {path}");
    }

    if failures.is_empty() {
        println!("gate: ok — all loop-heavy workloads met the dictionary thresholds");
    } else {
        for f in &failures {
            println!("gate: MISS — {f}");
        }
        if args.enforce {
            std::process::exit(1);
        }
    }
}
