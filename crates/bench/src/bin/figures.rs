//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p rap-bench --bin figures            # everything
//! cargo run --release -p rap-bench --bin figures -- fig8    # one figure
//! ```
//!
//! Available selectors: `fig1a`, `fig1b`, `fig8`, `fig9`, `fig10`,
//! `partials`, `ablate-loopopt`, `ablate-sg`, `ablate-padding`, `all`.
//! `--json <path>` additionally writes the measured series (every
//! workload × configuration) through the in-repo JSON writer.

use rap_bench::{
    measure_all, measure_rap, measure_rap_with, options_no_loop_opt, render_table, reports_to_json,
    WorkloadReport, MTB_SRAM_BYTES,
};
use rap_track::Metrics;

fn pct(new: u64, base: u64) -> String {
    if base == 0 {
        return "n/a".to_owned();
    }
    format!("{:+.1}%", (new as f64 / base as f64 - 1.0) * 100.0)
}

/// Runtime overhead of `m` over `base` (`Metrics::overhead_pct`),
/// rendered as `n/a` for a zero-cycle baseline.
fn ovh(m: &Metrics, base: &Metrics) -> String {
    match m.overhead_pct(base) {
        Some(p) => format!("{p:+.1}%"),
        None => "n/a".to_owned(),
    }
}

fn ratio(a: usize, b: usize) -> String {
    if b == 0 {
        "inf".to_owned()
    } else {
        format!("{:.1}x", a as f64 / b as f64)
    }
}

fn fig1a(reports: &[WorkloadReport]) {
    println!("== Fig. 1a: CF_Log size, naive MTB vs instrumentation-based CFA ==");
    println!("(paper: naive MTB logs are 1.9-217x larger)\n");
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                r.naive.cflog_bytes.to_string(),
                r.traces.cflog_bytes.to_string(),
                ratio(r.naive.cflog_bytes, r.traces.cflog_bytes),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["app", "naive MTB (B)", "instr. CFA (B)", "naive/instr"],
            &rows
        )
    );
}

fn fig1b(reports: &[WorkloadReport]) {
    println!("== Fig. 1b: runtime, instrumentation-based CFA vs naive MTB ==");
    println!("(paper: instrumentation adds a 1.1-14.1x increase)\n");
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                r.naive.cycles.to_string(),
                r.traces.cycles.to_string(),
                format!("{:.1}x", r.traces.cycles as f64 / r.naive.cycles as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["app", "naive MTB (cyc)", "instr. CFA (cyc)", "slowdown"],
            &rows
        )
    );
}

fn fig8(reports: &[WorkloadReport]) {
    println!("== Fig. 8: runtime comparison (CPU cycles) ==");
    println!("(paper: RAP-Track +2..62% over naive MTB; TRACES +7..1309%)\n");
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                r.plain.cycles.to_string(),
                r.naive.cycles.to_string(),
                r.rap.cycles.to_string(),
                r.traces.cycles.to_string(),
                ovh(&r.rap, &r.naive),
                ovh(&r.traces, &r.naive),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "app",
                "baseline",
                "naive MTB",
                "RAP-Track",
                "TRACES",
                "RAP ovh",
                "TRACES ovh"
            ],
            &rows
        )
    );
}

fn fig9(reports: &[WorkloadReport]) {
    println!("== Fig. 9: CF_Log size comparison (bytes) ==");
    println!("(paper: RAP-Track ~ TRACES, both far below naive MTB;");
    println!(" prime/gps: instrumentation-equivalent logs match RAP-Track)\n");
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                r.naive.cflog_bytes.to_string(),
                r.rap.cflog_bytes.to_string(),
                r.traces.cflog_bytes.to_string(),
                r.instr_equiv.cflog_bytes.to_string(),
                ratio(r.naive.cflog_bytes, r.rap.cflog_bytes),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "app",
                "naive MTB",
                "RAP-Track",
                "TRACES",
                "instr-equiv",
                "naive/RAP"
            ],
            &rows
        )
    );
}

fn fig10(reports: &[WorkloadReport]) {
    println!("== Fig. 10: code size comparison (bytes) ==");
    println!("(paper: RAP-Track slightly above TRACES due to trampolines + NOP padding)\n");
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                r.plain.code_bytes.to_string(),
                r.rap.code_bytes.to_string(),
                r.traces.code_bytes.to_string(),
                pct(r.rap.code_bytes as u64, r.plain.code_bytes as u64),
                pct(r.traces.code_bytes as u64, r.plain.code_bytes as u64),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "app",
                "original",
                "RAP-Track",
                "TRACES",
                "RAP growth",
                "TRACES growth"
            ],
            &rows
        )
    );
}

fn partials(reports: &[WorkloadReport]) {
    println!("== §V-B: report transmissions with the 4 KiB MTB SRAM ==");
    println!("(paper: naive MTB pauses frequently; RAP-Track usually sends once)\n");
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                r.naive.transmissions.to_string(),
                r.rap.transmissions.to_string(),
                r.traces.transmissions.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["app", "naive MTB", "RAP-Track", "TRACES"], &rows)
    );
    println!("(buffer = {MTB_SRAM_BYTES} bytes)\n");
}

fn ablate_loopopt() {
    println!("== Ablation: §IV-D loop optimization on/off (RAP-Track) ==\n");
    let rows: Vec<Vec<String>> = workloads::all()
        .iter()
        .map(|w| {
            let with = measure_rap(w);
            let without = measure_rap_with(w, options_no_loop_opt());
            vec![
                w.name.to_owned(),
                with.cflog_bytes.to_string(),
                without.cflog_bytes.to_string(),
                with.cycles.to_string(),
                without.cycles.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "app",
                "log w/ opt",
                "log w/o opt",
                "cycles w/ opt",
                "cycles w/o opt"
            ],
            &rows
        )
    );
}

fn ablate_padding() {
    println!("== Ablation: MTBAR NOP padding (code size vs activation latency) ==\n");
    let mut rows = Vec::new();
    for pad in [0u32, 1, 2, 4] {
        let options = rap_link::LinkOptions {
            transform: rap_link::TransformOptions { nop_padding: pad },
            ..rap_link::LinkOptions::default()
        };
        let mut total_code = 0u64;
        for w in workloads::all() {
            let linked = rap_link::link(&w.module, 0, options).expect("links");
            total_code += u64::from(linked.image.end() - linked.image.base());
        }
        rows.push(vec![pad.to_string(), total_code.to_string()]);
    }
    println!(
        "{}",
        render_table(&["nop padding", "total code bytes (all apps)"], &rows)
    );
    println!("(padding must cover the MTB activation latency, §V-C)\n");
}

fn ablate_sg() {
    println!("== Ablation: context-switch cost sensitivity (gps workload) ==");
    println!("(TRACES pays the switch per event; RAP-Track only per optimized loop)\n");
    let w = workloads::gps::workload();
    let mut rows = Vec::new();
    for sg in [30u64, 60, 120, 240] {
        let model = mcu_sim::cycles::CostModel {
            sg_entry: sg,
            sg_exit: sg,
            log_append: mcu_sim::cycles::LOG_APPEND,
        };

        // RAP-Track under this cost model.
        let linked = rap_link::link(&w.module, 0, rap_link::LinkOptions::default()).unwrap();
        let engine = rap_track::CfaEngine::new(rap_track::device_key("ablate"));
        let mut machine = mcu_sim::Machine::new(linked.image.clone());
        machine.set_cost_model(model);
        (w.attach)(&mut machine);
        let att = engine
            .attest(
                &mut machine,
                &linked.map,
                rap_track::Challenge::from_seed(0),
                rap_track::EngineConfig::default(),
            )
            .unwrap();
        let rap_cycles = att.outcome.cycles;

        // TRACES under this cost model.
        let program =
            cfa_baselines::instrument(&w.module, 0, cfa_baselines::TracesConfig::default())
                .unwrap();
        let mut traced = mcu_sim::Machine::new(program.image.clone());
        traced.set_cost_model(model);
        (w.attach)(&mut traced);
        let mut world = cfa_baselines::TracesWorld::new(program.config);
        let outcome = traced.run(&mut world, w.max_instrs * 4).unwrap();

        rows.push(vec![
            format!("{sg}"),
            format!("{rap_cycles}"),
            format!("{}", outcome.cycles),
            format!("{:.1}x", outcome.cycles as f64 / rap_cycles as f64),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["SG entry/exit cyc", "RAP-Track", "TRACES", "TRACES/RAP"],
            &rows
        )
    );
}

fn sweep_density() {
    println!("== Sweep: tracked-branch density (synthetic kernel) ==");
    println!("(how each method scales as conditionals dominate the code)\n");
    let mut rows = Vec::new();
    for conds in [0u16, 1, 2, 4, 8, 16] {
        let w = workloads::synthetic::synthetic(workloads::synthetic::SyntheticParams {
            conditionals_per_iter: conds,
            ..workloads::synthetic::SyntheticParams::default()
        });
        let plain = rap_bench::measure_plain(&w);
        let rap = rap_bench::measure_rap(&w);
        let traces = rap_bench::measure_traces(&w);
        rows.push(vec![
            conds.to_string(),
            ovh(&rap, &plain),
            ovh(&traces, &plain),
            rap.cflog_bytes.to_string(),
            traces.cflog_bytes.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "conds/iter",
                "RAP ovh",
                "TRACES ovh",
                "RAP log (B)",
                "TRACES log (B)"
            ],
            &rows
        )
    );
    println!("(RAP-Track's overhead plateaus; TRACES grows with every conditional)\n");
}

fn sweep_volume() {
    println!("== Sweep: input volume (NMEA sentences, gps parser) ==");
    println!("(lossless CF_Log grows linearly with input; so do partial reports)\n");
    let mut rows = Vec::new();
    for n in [2usize, 4, 8, 16, 32, 64] {
        let w = workloads::synthetic::gps_scaled(n);
        let plain = rap_bench::measure_plain(&w);
        let rap = rap_bench::measure_rap(&w);
        rows.push(vec![
            n.to_string(),
            plain.cycles.to_string(),
            rap.cycles.to_string(),
            rap.cflog_bytes.to_string(),
            rap.transmissions.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "sentences",
                "baseline cyc",
                "RAP cyc",
                "RAP log (B)",
                "transmissions"
            ],
            &rows
        )
    );
}

fn main() {
    let mut selector: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--json" {
            json_out = it.next();
        } else if selector.is_none() {
            selector = Some(a);
        }
    }
    let selector = selector.unwrap_or_else(|| "all".to_owned());
    let needs_reports = json_out.is_some()
        || matches!(
            selector.as_str(),
            "all" | "fig1a" | "fig1b" | "fig8" | "fig9" | "fig10" | "partials"
        );
    let reports = if needs_reports {
        measure_all()
    } else {
        Vec::new()
    };
    if let Some(path) = &json_out {
        std::fs::write(path, reports_to_json(&reports).to_pretty()).expect("write series json");
        eprintln!("series -> {path}");
    }

    match selector.as_str() {
        "fig1a" => fig1a(&reports),
        "fig1b" => fig1b(&reports),
        "fig8" => fig8(&reports),
        "fig9" => fig9(&reports),
        "fig10" => fig10(&reports),
        "partials" => partials(&reports),
        "ablate-loopopt" => ablate_loopopt(),
        "ablate-padding" => ablate_padding(),
        "ablate-sg" => ablate_sg(),
        "sweep-density" => sweep_density(),
        "sweep-volume" => sweep_volume(),
        "all" => {
            fig1a(&reports);
            fig1b(&reports);
            fig8(&reports);
            fig9(&reports);
            fig10(&reports);
            partials(&reports);
            ablate_loopopt();
            ablate_padding();
            ablate_sg();
            sweep_density();
            sweep_volume();
        }
        other => {
            eprintln!("unknown figure selector `{other}`");
            eprintln!(
                "available: fig1a fig1b fig8 fig9 fig10 partials \
                 ablate-loopopt ablate-padding ablate-sg \
                 sweep-density sweep-volume all"
            );
            std::process::exit(2);
        }
    }
}
