//! # rap-bench — the evaluation harness
//!
//! Reduces every (workload × CFA configuration) pair to a
//! [`rap_track::Metrics`] record and renders the paper's figures:
//!
//! | figure | series |
//! |---|---|
//! | Fig. 1a | naive-MTB `CF_Log` size vs instrumentation-based CFA |
//! | Fig. 1b | instrumentation-based CFA runtime vs naive MTB |
//! | Fig. 8 | CPU cycles: baseline / naive MTB / RAP-Track / TRACES |
//! | Fig. 9 | `CF_Log` bytes: naive MTB / RAP-Track / TRACES (+ §V-B) |
//! | Fig. 10 | code size: original / RAP-Track / TRACES |
//! | §V-B | partial-report transmissions with the 4 KiB MTB SRAM |
//!
//! Used by the `figures` binary, the dependency-free benches under
//! `benches/` (see [`harness`]) and the integration tests.

#![warn(missing_docs)]

pub mod harness;

use cfa_baselines::{instrument, run_naive_mtb, run_plain, TracesConfig};
use rap_link::{link, ClassifyOptions, LinkOptions, TransformOptions};
use rap_track::{device_key, CfaEngine, Challenge, EngineConfig, Metrics};
use workloads::Workload;

/// The MTB trace-SRAM capacity of the paper's prototype (4 KiB).
pub const MTB_SRAM_BYTES: usize = 4096;

/// Every configuration's metrics for one workload.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Workload name.
    pub name: &'static str,
    /// Unmodified application, no CFA.
    pub plain: Metrics,
    /// Naive MTB (`TSTARTEN`) tracing.
    pub naive: Metrics,
    /// RAP-Track.
    pub rap: Metrics,
    /// TRACES-style instrumentation CFA.
    pub traces: Metrics,
    /// §V-B instrumentation-equivalent variant.
    pub instr_equiv: Metrics,
}

/// Measures the plain baseline.
///
/// # Panics
///
/// Panics when the workload fails to assemble or run — a harness
/// configuration error.
pub fn measure_plain(w: &Workload) -> Metrics {
    let image = w.module.assemble(0).expect("workload assembles");
    let code_bytes = image.end() - image.base();
    let run = run_plain(&image, w.max_instrs, w.attach).expect("plain runs");
    Metrics {
        cycles: run.cycles,
        instrs: run.instrs,
        cflog_bytes: 0,
        code_bytes,
        transmissions: 0,
    }
}

/// Measures the naive-MTB baseline.
///
/// # Panics
///
/// Panics on assembly or execution failure.
pub fn measure_naive(w: &Workload) -> Metrics {
    let image = w.module.assemble(0).expect("workload assembles");
    let code_bytes = image.end() - image.base();
    let run = run_naive_mtb(&image, w.max_instrs, w.attach).expect("naive runs");
    Metrics {
        cycles: run.cycles,
        instrs: run.instrs,
        cflog_bytes: run.cflog_bytes,
        code_bytes,
        transmissions: run.transmissions,
    }
}

/// Measures RAP-Track with explicit link options (ablation entry point).
///
/// # Panics
///
/// Panics on link, assembly or execution failure.
pub fn measure_rap_with(w: &Workload, options: LinkOptions) -> Metrics {
    let linked = link(&w.module, 0, options).expect("workload links");
    let engine = CfaEngine::new(device_key("bench"));
    let mut machine = mcu_sim::Machine::new(linked.image.clone());
    (w.attach)(&mut machine);
    let att = engine
        .attest(
            &mut machine,
            &linked.map,
            Challenge::from_seed(0),
            EngineConfig {
                max_instrs: w.max_instrs * 2,
                watermark: None,
            },
        )
        .expect("attestation runs");
    // CF_Log size from the monotonic hardware counter (unaffected by
    // buffer wrap) plus the Secure-World loop records.
    let mtb_bytes = machine.fabric.mtb().total_recorded() as usize * 8;
    let loop_bytes = att.combined_log().loop_records.len() * rap_track::CfLog::LOOP_RECORD_BYTES;
    let cflog_bytes = mtb_bytes + loop_bytes;
    Metrics {
        cycles: att.outcome.cycles,
        instrs: att.outcome.instrs,
        cflog_bytes,
        code_bytes: linked.image.end() - linked.image.base(),
        transmissions: cflog_bytes.div_ceil(MTB_SRAM_BYTES).max(1),
    }
}

/// Measures RAP-Track with default options.
pub fn measure_rap(w: &Workload) -> Metrics {
    measure_rap_with(w, LinkOptions::default())
}

/// Measures a TRACES-style instrumentation run.
///
/// # Panics
///
/// Panics on instrumentation or execution failure.
pub fn measure_traces_with(w: &Workload, config: TracesConfig) -> Metrics {
    let program = instrument(&w.module, 0, config).expect("workload instruments");
    let run = cfa_baselines::run(&program, w.max_instrs * 4, w.attach).expect("traces runs");
    Metrics {
        cycles: run.cycles,
        instrs: run.instrs,
        cflog_bytes: run.cflog_bytes,
        code_bytes: program.image.end() - program.image.base(),
        transmissions: run.transmissions,
    }
}

/// Measures TRACES with its default optimizations.
pub fn measure_traces(w: &Workload) -> Metrics {
    measure_traces_with(w, TracesConfig::default())
}

/// Measures the §V-B instrumentation-equivalent variant.
pub fn measure_instr_equiv(w: &Workload) -> Metrics {
    measure_traces_with(w, TracesConfig::instrumentation_equivalent())
}

/// Measures all configurations of one workload.
pub fn measure(w: &Workload) -> WorkloadReport {
    WorkloadReport {
        name: w.name,
        plain: measure_plain(w),
        naive: measure_naive(w),
        rap: measure_rap(w),
        traces: measure_traces(w),
        instr_equiv: measure_instr_equiv(w),
    }
}

/// Measures every workload.
pub fn measure_all() -> Vec<WorkloadReport> {
    workloads::all().iter().map(measure).collect()
}

/// Link options with the §IV-D loop optimization disabled (ablation).
pub fn options_no_loop_opt() -> LinkOptions {
    LinkOptions {
        classify: ClassifyOptions {
            loop_opt: false,
            static_loop_elision: false,
        },
        transform: TransformOptions::default(),
    }
}

/// Serializes one [`Metrics`] record via the in-repo JSON writer.
pub fn metrics_to_json(m: &Metrics) -> rap_obs::Json {
    use rap_obs::Json;
    Json::obj([
        ("cycles", Json::Uint(m.cycles)),
        ("instrs", Json::Uint(m.instrs)),
        ("cflog_bytes", Json::Uint(m.cflog_bytes as u64)),
        ("code_bytes", Json::Uint(u64::from(m.code_bytes))),
        ("transmissions", Json::Uint(m.transmissions as u64)),
    ])
}

/// Serializes the full figure series (every workload × configuration)
/// for the `figures --json` artifact.
pub fn reports_to_json(reports: &[WorkloadReport]) -> rap_obs::Json {
    use rap_obs::Json;
    Json::obj([(
        "workloads",
        Json::Arr(
            reports
                .iter()
                .map(|r| {
                    Json::obj([
                        ("name", Json::Str(r.name.to_string())),
                        ("plain", metrics_to_json(&r.plain)),
                        ("naive", metrics_to_json(&r.naive)),
                        ("rap", metrics_to_json(&r.rap)),
                        ("traces", metrics_to_json(&r.traces)),
                        ("instr_equiv", metrics_to_json(&r.instr_equiv)),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Renders one figure row set as an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        line.trim_end().to_owned() + "\n"
    };
    out.push_str(&fmt_row(
        headers.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push_str(&fmt_row(
        widths.iter().map(|w| "-".repeat(*w)).collect(),
        &widths,
    ));
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_smallest_workload() {
        let w = workloads::temperature::workload();
        let report = measure(&w);
        // Fig. 8 ordering: plain = naive ≤ rap < traces.
        assert_eq!(report.plain.cycles, report.naive.cycles);
        assert!(report.rap.cycles >= report.plain.cycles);
        assert!(report.traces.cycles > report.rap.cycles);
        // Fig. 9 ordering: rap ≪ naive.
        assert!(report.naive.cflog_bytes > report.rap.cflog_bytes);
        // Fig. 10: both CFA variants grow the code.
        assert!(report.rap.code_bytes > report.plain.code_bytes);
        assert!(report.traces.code_bytes > report.plain.code_bytes);
    }

    #[test]
    fn ablation_options_disable_loop_plans() {
        let w = workloads::ultrasonic::workload();
        let with = measure_rap(&w);
        let without = measure_rap_with(&w, options_no_loop_opt());
        // Without §IV-D the echo-wait iterations are logged one by one.
        assert!(
            without.cflog_bytes > 4 * with.cflog_bytes,
            "loop opt should shrink the log: {} vs {}",
            without.cflog_bytes,
            with.cflog_bytes
        );
        assert!(without.cycles >= with.cycles);
    }

    #[test]
    fn metrics_serialize_via_repo_json() {
        let m = Metrics {
            cycles: 5,
            cflog_bytes: 64,
            ..Metrics::default()
        };
        let text = metrics_to_json(&m).to_compact();
        let doc = rap_obs::json::parse(&text).unwrap();
        assert_eq!(doc.get("cycles").and_then(rap_obs::Json::as_u64), Some(5));
        assert_eq!(
            doc.get("cflog_bytes").and_then(rap_obs::Json::as_u64),
            Some(64)
        );
    }

    #[test]
    fn table_rendering_aligns() {
        let table = render_table(
            &["app", "value"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[2].starts_with("x"));
    }
}
