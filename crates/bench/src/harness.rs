//! A dependency-free micro-benchmark harness.
//!
//! The evaluation machines are air-gapped, so the Criterion dependency
//! was replaced with this minimal wall-clock harness: each benchmark
//! runs a warmup pass, then a fixed number of timed samples, and the
//! report prints the median, minimum and mean time per iteration.
//! Output is line-oriented (`group/name  median  min  mean  iters`) so
//! it can be diffed and grepped in CI.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark sample set, reduced to summary statistics.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Median time per iteration.
    pub median: Duration,
    /// Fastest sample's time per iteration.
    pub min: Duration,
    /// Mean time per iteration over all samples.
    pub mean: Duration,
    /// Iterations per sample.
    pub iters: u64,
}

impl Stats {
    /// Iterations per second implied by the median sample.
    pub fn per_sec(&self) -> f64 {
        if self.median.is_zero() {
            f64::INFINITY
        } else {
            1.0 / self.median.as_secs_f64()
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 10_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// A named collection of benchmarks sharing sample configuration.
pub struct BenchGroup {
    name: String,
    samples: usize,
    target_sample_time: Duration,
}

impl BenchGroup {
    /// Creates a group with default sampling (10 samples of ~50ms).
    pub fn new(name: &str) -> BenchGroup {
        BenchGroup {
            name: name.to_owned(),
            samples: 10,
            target_sample_time: Duration::from_millis(50),
        }
    }

    /// Overrides the number of timed samples.
    pub fn samples(mut self, samples: usize) -> BenchGroup {
        self.samples = samples.max(1);
        self
    }

    /// Runs one benchmark: times `f`, prints a report line and returns
    /// the statistics for programmatic use (e.g. speedup assertions).
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Stats {
        // Warmup + iteration-count calibration: run once, then size the
        // per-sample iteration count to hit the target sample time.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters =
            (self.target_sample_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(start.elapsed() / iters as u32);
        }
        per_iter.sort();
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
        let stats = Stats {
            median,
            min,
            mean,
            iters,
        };
        println!(
            "{}/{:<32} median {:>9}  min {:>9}  mean {:>9}  ({} it/sample)",
            self.name,
            name,
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(mean),
            iters
        );
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_stats() {
        let stats = BenchGroup::new("t").samples(3).bench("noop", || 1 + 1);
        assert!(stats.min <= stats.median);
        assert!(stats.iters >= 1);
        assert!(stats.per_sec() > 0.0);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5ns");
        assert!(fmt_duration(Duration::from_micros(500)).ends_with("us"));
        assert!(fmt_duration(Duration::from_millis(500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(20)).ends_with('s'));
    }
}
