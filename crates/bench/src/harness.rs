//! A dependency-free micro-benchmark harness.
//!
//! The evaluation machines are air-gapped, so the Criterion dependency
//! was replaced with this minimal wall-clock harness: each benchmark
//! runs a warmup pass, then a fixed number of timed samples, and the
//! report prints the median, minimum and mean time per iteration.
//! Output is line-oriented (`group/name  median  min  mean  iters`) so
//! it can be diffed and grepped in CI.

use std::hint::black_box;
use std::time::{Duration, Instant};

use rap_obs::Json;

/// One benchmark sample set, reduced to summary statistics.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Median time per iteration.
    pub median: Duration,
    /// Fastest sample's time per iteration.
    pub min: Duration,
    /// Mean time per iteration over all samples.
    pub mean: Duration,
    /// 95th-percentile (nearest-rank) time per iteration.
    pub p95: Duration,
    /// Iterations per sample.
    pub iters: u64,
}

impl Stats {
    /// Iterations per second implied by the median sample.
    pub fn per_sec(&self) -> f64 {
        if self.median.is_zero() {
            f64::INFINITY
        } else {
            1.0 / self.median.as_secs_f64()
        }
    }

    /// Reduces raw per-iteration sample times to summary statistics.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample set — a harness bug.
    pub fn from_samples(mut per_iter: Vec<Duration>, iters: u64) -> Stats {
        assert!(!per_iter.is_empty(), "no samples");
        per_iter.sort();
        // Nearest-rank p95: with few samples this degrades to the max,
        // which is the conservative tail estimate we want.
        Stats {
            median: per_iter[per_iter.len() / 2],
            min: per_iter[0],
            mean: per_iter.iter().sum::<Duration>() / per_iter.len() as u32,
            p95: per_iter[(per_iter.len() * 95).div_ceil(100).saturating_sub(1)],
            iters,
        }
    }

    /// Serializes the summary for the `BENCH_*.json` artifacts.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("median_ns", Json::Uint(self.median.as_nanos() as u64)),
            ("min_ns", Json::Uint(self.min.as_nanos() as u64)),
            ("mean_ns", Json::Uint(self.mean.as_nanos() as u64)),
            ("p95_ns", Json::Uint(self.p95.as_nanos() as u64)),
            ("iters", Json::Uint(self.iters)),
        ])
    }
}

/// Arguments shared by the `harness = false` bench binaries:
/// `--quick` shrinks the workload for CI smoke runs, `--json <path>`
/// writes the per-case summaries as a `BENCH_*.json` artifact, and
/// `--enforce` turns a bench's built-in regression thresholds (if it
/// has any) into a non-zero exit. Unknown arguments (e.g. cargo's own)
/// are ignored.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// Run a reduced configuration (fewer samples/devices).
    pub quick: bool,
    /// Where to write the JSON summary, if anywhere.
    pub json_out: Option<String>,
    /// Fail (exit non-zero) when the bench's thresholds are missed.
    pub enforce: bool,
}

impl BenchArgs {
    /// Parses `std::env::args()`.
    pub fn parse() -> BenchArgs {
        let mut args = BenchArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => args.quick = true,
                "--json" => args.json_out = it.next(),
                "--enforce" => args.enforce = true,
                _ => {}
            }
        }
        args
    }
}

/// Accumulates named [`Stats`] and writes them as one JSON document
/// (`{ "cases": { "<group>/<name>": { median_ns, p95_ns, ... } } }`).
#[derive(Debug, Default)]
pub struct BenchReport {
    cases: Vec<ReportCase>,
}

/// One recorded case: id, summary stats, and extra JSON fields merged
/// into the serialized object.
type ReportCase = (String, Stats, Vec<(String, Json)>);

impl BenchReport {
    /// Records one case's summary under `id` (conventionally
    /// `group/name`).
    pub fn record(&mut self, id: &str, stats: Stats) {
        self.cases.push((id.to_owned(), stats, Vec::new()));
    }

    /// Like [`record`](Self::record), with extra JSON fields merged
    /// into the case object — e.g. a derived `speedup_vs_1` ratio.
    pub fn record_with(
        &mut self,
        id: &str,
        stats: Stats,
        extras: impl IntoIterator<Item = (&'static str, Json)>,
    ) {
        self.cases.push((
            id.to_owned(),
            stats,
            extras.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
        ));
    }

    /// Serializes every recorded case, alongside the machine's core
    /// count — a scaling figure is meaningless without knowing how
    /// much parallelism the host actually had.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("host_cores", Json::Uint(host_cores() as u64)),
            (
                "cases",
                Json::Obj(
                    self.cases
                        .iter()
                        .map(|(id, stats, extras)| {
                            let mut case = match stats.to_json() {
                                Json::Obj(entries) => entries,
                                _ => unreachable!("Stats::to_json returns an object"),
                            };
                            case.extend(extras.iter().cloned());
                            (id.clone(), Json::Obj(case))
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes the report to `path` as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Forwards the filesystem error.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty())
    }
}

/// The host's available parallelism (1 if the query fails). Recorded
/// in every `BENCH_*.json` artifact and used by scaling benches to
/// refuse to record speedup figures the machine cannot produce.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 10_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// A named collection of benchmarks sharing sample configuration.
pub struct BenchGroup {
    name: String,
    samples: usize,
    target_sample_time: Duration,
}

impl BenchGroup {
    /// Creates a group with default sampling (10 samples of ~50ms).
    pub fn new(name: &str) -> BenchGroup {
        BenchGroup {
            name: name.to_owned(),
            samples: 10,
            target_sample_time: Duration::from_millis(50),
        }
    }

    /// Overrides the number of timed samples.
    pub fn samples(mut self, samples: usize) -> BenchGroup {
        self.samples = samples.max(1);
        self
    }

    /// Runs one benchmark: times `f`, prints a report line and returns
    /// the statistics for programmatic use (e.g. speedup assertions).
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Stats {
        // Warmup + iteration-count calibration: run once, then size the
        // per-sample iteration count to hit the target sample time.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters =
            (self.target_sample_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(start.elapsed() / iters as u32);
        }
        let stats = Stats::from_samples(per_iter, iters);
        println!(
            "{}/{:<32} median {:>9}  min {:>9}  mean {:>9}  ({} it/sample)",
            self.name,
            name,
            fmt_duration(stats.median),
            fmt_duration(stats.min),
            fmt_duration(stats.mean),
            iters
        );
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_stats() {
        let stats = BenchGroup::new("t").samples(3).bench("noop", || 1 + 1);
        assert!(stats.min <= stats.median);
        assert!(stats.median <= stats.p95);
        assert!(stats.iters >= 1);
        assert!(stats.per_sec() > 0.0);
    }

    #[test]
    fn report_serializes_cases() {
        let stats = BenchGroup::new("t").samples(2).bench("noop", || ());
        let mut report = BenchReport::default();
        report.record("t/noop", stats);
        let json = report.to_json().to_compact();
        let doc = rap_obs::json::parse(&json).unwrap();
        let case = doc.get("cases").and_then(|c| c.get("t/noop")).unwrap();
        assert_eq!(case.get("iters").and_then(Json::as_u64), Some(stats.iters));
        assert!(case.get("p95_ns").and_then(Json::as_u64).is_some());
        // Every artifact states how many cores produced it.
        assert_eq!(
            doc.get("host_cores").and_then(Json::as_u64),
            Some(host_cores() as u64)
        );
    }

    #[test]
    fn record_with_merges_extra_fields() {
        let stats = BenchGroup::new("t").samples(2).bench("noop", || ());
        let mut report = BenchReport::default();
        report.record_with("t/extra", stats, [("speedup_vs_1", Json::Num(2.5))]);
        let json = report.to_json().to_compact();
        let doc = rap_obs::json::parse(&json).unwrap();
        let case = doc.get("cases").and_then(|c| c.get("t/extra")).unwrap();
        assert!(case.get("median_ns").is_some());
        assert_eq!(case.get("speedup_vs_1").and_then(Json::as_f64), Some(2.5));
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5ns");
        assert!(fmt_duration(Duration::from_micros(500)).ends_with("us"));
        assert!(fmt_duration(Duration::from_millis(500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(20)).ends_with('s'));
    }
}
