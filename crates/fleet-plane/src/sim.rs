//! A deterministic simulated fleet over loopback TCP: SplitMix64-
//! seeded device actors attesting against a real [`rap_serve::Server`]
//! with the fleet plane attached via the round hook (so every
//! transition cites the sealed verdict record that triggered it),
//! driven on a logical clock so the same seed reproduces the same
//! transitions byte-for-byte.
//!
//! Actors run one round per scheduled slot on a short-lived
//! connection, parking their session with `close()` and reconnecting
//! via the resumption token on the next slot — so the nonce chain (and
//! the registry's view of the device) survives reconnects, which is
//! exactly the property the quarantine tests lean on. A compromisable
//! actor flips to forged reports mid-run (redirected MTB packet,
//! re-signed — authentication passes, replay rejects), modelling a
//! code-reuse attack on a device that still holds its key; restoring
//! it models a re-flash.

use std::collections::BTreeMap;
use std::time::Duration;

use rap_serve::{AttestClient, ClientConfig, ResumeToken, Server, ServerConfig, ServerStats};
use rap_track::{CfaEngine, Challenge, EngineConfig, Key, Report, Verifier};

use crate::registry::FleetPlane;
use crate::sched::Scheduler;
use crate::state::{DeviceState, Event, Policy};

/// SplitMix64 — the repo-standard deterministic generator, local so
/// the crate stays dependency-free.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Configuration of one simulated fleet run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Total devices (`dev-000`, `dev-001`, …).
    pub devices: usize,
    /// How many (the lowest-numbered) flip to forged reports at
    /// [`SimConfig::flip_at_slot`].
    pub compromised: usize,
    /// How many (after the compromised block) are flaky: they skip
    /// roughly half their slots, which the scheduler records as
    /// timeouts.
    pub flaky: usize,
    /// Scheduler slots to drive; slot `s` is logical time
    /// `s · round_interval_ms`.
    pub slots: u64,
    /// Seed for every actor decision.
    pub seed: u64,
    /// Slot at which compromised actors start forging.
    pub flip_at_slot: u64,
    /// Slot at which compromised actors are "re-flashed" benign
    /// (models remediation; lets the quarantine → heal loop complete).
    pub restore_at_slot: u64,
    /// The fleet policy, in logical time.
    pub policy: Policy,
    /// Bind the admin plane and include fleet state in STATS JSON.
    pub admin: bool,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            devices: 4,
            compromised: 1,
            flaky: 0,
            slots: 24,
            seed: 0xF1EE7,
            flip_at_slot: 4,
            restore_at_slot: 10,
            policy: SimConfig::demo_policy(),
            admin: false,
        }
    }
}

impl SimConfig {
    /// A policy scaled to the simulation's logical clock (100 ms
    /// slots) so the full compromise → quarantine → heal loop fits in
    /// a few dozen slots.
    pub fn demo_policy() -> Policy {
        Policy {
            suspect_after: 1,
            quarantine_after: 2,
            heal_accepts: 2,
            timeout_suspect_after: 2,
            reject_decay_ms: 100_000,
            quarantine_ttl_ms: 400,
            reprovision_backoff_ms: 100,
            backoff_cap_ms: 1_600,
            round_interval_ms: 100,
            quarantine_throttle: 2,
        }
    }
}

/// What one run produced: deterministic fields first (assert on
/// these), then wall-clock server stats.
#[derive(Debug)]
pub struct SimReport {
    /// The audit log rendered one line per transition —
    /// byte-for-byte identical across runs with the same config.
    pub transitions: String,
    /// Final state per device, name-ordered.
    pub states: BTreeMap<String, DeviceState>,
    /// Registry JSON at the end of the run.
    pub registry_json: rap_obs::Json,
    /// Admin STATS JSON scraped mid-run (`Some` iff
    /// [`SimConfig::admin`]).
    pub admin_stats_json: Option<rap_obs::Json>,
    /// Rounds driven over the wire (excludes skipped slots).
    pub rounds_driven: u64,
    /// Accepted / rejected verdicts as seen by the actors.
    pub accepted: u64,
    /// Rejected verdicts.
    pub rejected: u64,
    /// Slots skipped by flaky actors (fed to the plane as timeouts).
    pub timeouts: u64,
    /// Server-side counters (wall-clock plane, informational).
    pub server: ServerStats,
}

/// A simulation failure (server start or client transport).
#[derive(Debug)]
pub struct SimError(pub String);

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fleet sim: {}", self.0)
    }
}

impl std::error::Error for SimError {}

fn sim_key() -> Key {
    rap_track::device_key("fleet-sim")
}

/// A device actor: a cached benign attestation it re-signs per
/// challenge, its resumption token, and its misbehaviour switches.
struct Actor {
    name: String,
    compromised: bool,
    flaky: bool,
    token: Option<ResumeToken>,
    rng: SplitMix64,
}

/// The template reports all actors re-sign (the fleet shares one
/// image, so one attestation run serves every actor).
struct ReportTemplate {
    reports: Vec<Report>,
}

impl ReportTemplate {
    fn new(linked: &rap_link::LinkedProgram, w: &workloads::Workload) -> ReportTemplate {
        let engine = CfaEngine::new(sim_key());
        let mut machine = mcu_sim::Machine::new(linked.image.clone());
        (w.attach)(&mut machine);
        let reports = engine
            .attest(
                &mut machine,
                &linked.map,
                Challenge::from_seed(0),
                EngineConfig {
                    max_instrs: w.max_instrs * 2,
                    watermark: Some(256),
                },
            )
            .expect("benign attestation runs")
            .reports;
        ReportTemplate { reports }
    }

    /// Benign: re-sign the cached log under `chal`.
    fn benign(&self, chal: Challenge) -> Vec<Report> {
        self.reports
            .iter()
            .enumerate()
            .map(|(seq, r)| {
                Report::new(
                    &sim_key(),
                    chal,
                    r.h_mem,
                    r.log.clone(),
                    seq as u32,
                    r.is_final,
                    r.overflow,
                )
            })
            .collect()
    }

    /// Forged: the strongest adversary (holds the key) redirects one
    /// MTB packet and re-signs — authentication passes, replay must
    /// reject.
    fn forged(&self, chal: Challenge) -> Vec<Report> {
        let mut reports = self.benign(chal);
        let seq = reports
            .iter()
            .position(|r| !r.log.mtb.is_empty())
            .expect("some report has MTB packets");
        let mut log = reports[seq].log.clone();
        log.mtb[0].dest ^= 0x40;
        reports[seq] = Report::new(
            &sim_key(),
            chal,
            reports[seq].h_mem,
            log,
            seq as u32,
            reports[seq].is_final,
            reports[seq].overflow,
        );
        reports
    }
}

/// Runs one deterministic fleet simulation. The returned
/// [`SimReport::transitions`] depends only on `config` — never on
/// wall-clock timing — so two runs with the same config compare equal.
pub fn run(config: &SimConfig) -> Result<SimReport, SimError> {
    let w = workloads::by_name("fibcall").expect("fibcall workload exists");
    let linked = rap_link::link(&w.module, 0, rap_link::LinkOptions::default())
        .map_err(|e| SimError(format!("link: {e:?}")))?;
    let verifier = Verifier::builder()
        .key(sim_key())
        .image(linked.image.clone())
        .map(linked.map.clone())
        .build()
        .expect("all builder fields set");
    let template = ReportTemplate::new(&linked, &w);

    let policy = config.policy.clone().sanitized();
    let plane = FleetPlane::new(policy.clone());
    let server_config = ServerConfig {
        session_secret: b"fleet-sim-secret".to_vec(),
        round_hook: Some(plane.round_hook()),
        admin_addr: config.admin.then(|| "127.0.0.1:0".to_string()),
        admin_extra: config.admin.then(|| plane.admin_extra()),
        ..ServerConfig::default()
    };
    let server = Server::start(verifier, "127.0.0.1:0", server_config)
        .map_err(|e| SimError(format!("server start: {e}")))?;
    let client = AttestClient::new(
        server.local_addr().to_string(),
        ClientConfig {
            retries: 2,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(50),
            read_timeout: Duration::from_secs(10),
            ..ClientConfig::default()
        },
    );

    let mut actors: Vec<Actor> = (0..config.devices)
        .map(|i| Actor {
            name: format!("dev-{i:03}"),
            compromised: i < config.compromised,
            flaky: i >= config.compromised && i < config.compromised + config.flaky,
            token: None,
            rng: SplitMix64::new(config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9)),
        })
        .collect();

    let mut sched = Scheduler::new();
    for actor in &actors {
        plane.register(&actor.name);
        sched.add(&actor.name, 0);
    }

    let mut rounds_driven = 0u64;
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut timeouts = 0u64;
    let mut admin_stats_json = None;

    for slot in 0..config.slots {
        let now_ms = slot * policy.round_interval_ms;
        plane.set_now_ms(now_ms);
        // TTLs expire even for devices the throttle is not
        // challenging this slot.
        plane.tick_all();

        let due = sched.due(now_ms);
        for name in due {
            let actor = actors
                .iter_mut()
                .find(|a| a.name == name)
                .expect("scheduled device exists");
            if actor.flaky && actor.rng.next_u64() % 2 == 0 {
                // Skipped slot: the scheduler's view is a timeout.
                plane.observe(&actor.name, Event::Timeout);
                timeouts += 1;
            } else {
                let forging = actor.compromised
                    && slot >= config.flip_at_slot
                    && slot < config.restore_at_slot;
                // Reconnect via the resumption token when one is
                // held; fall back to a fresh HELLO (e.g. token
                // evicted or expired) so one lost session never
                // wedges an actor.
                let conn = match actor.token.take() {
                    Some(token) => match client.resume(&actor.name, token) {
                        Ok(conn) => Ok(conn),
                        Err(_) => client.open(&actor.name),
                    },
                    None => client.open(&actor.name),
                };
                let mut conn = conn.map_err(|e| SimError(format!("{name}: connect: {e}")))?;
                let verdict = conn
                    .round(|chal| {
                        if forging {
                            template.forged(chal)
                        } else {
                            template.benign(chal)
                        }
                    })
                    .map_err(|e| SimError(format!("{name}: round: {e}")))?;
                actor.token = conn.close();
                rounds_driven += 1;
                if verdict.accepted {
                    accepted += 1;
                } else {
                    rejected += 1;
                }
            }
            let state = plane.with_registry(|reg| {
                reg.device(&name)
                    .map(|m| m.state())
                    .unwrap_or(DeviceState::Healthy)
            });
            sched.reschedule(&name, now_ms, state, &policy);
        }

        // One mid-run admin scrape, late enough that transitions have
        // usually fired (informational — not part of the
        // deterministic surface).
        if config.admin && slot == config.slots.saturating_sub(2) {
            if let Some(addr) = server.admin_addr() {
                if let Ok(mut conn) = rap_serve::AdminClient::new(addr.to_string()).connect() {
                    if let Ok(json) = conn.stats(rap_serve::StatsFormat::Json) {
                        admin_stats_json = rap_obs::json::parse(&json).ok();
                    }
                }
            }
        }
    }

    let transitions = plane.with_registry(|reg| reg.render_transitions());
    let states = plane.with_registry(|reg| {
        reg.devices()
            .map(|(name, m)| (name.clone(), m.state()))
            .collect()
    });
    let registry_json = plane.to_json();
    let server_stats = server.shutdown();

    Ok(SimReport {
        transitions,
        states,
        registry_json,
        admin_stats_json,
        rounds_driven,
        accepted,
        rejected,
        timeouts,
        server: server_stats,
    })
}
