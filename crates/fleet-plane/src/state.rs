//! The per-device quarantine state machine and the declarative
//! [`Policy`] that drives it.
//!
//! Every registered device is always in exactly one of four states:
//!
//! ```text
//!            rejects >= suspect_after          rejects >= quarantine_after
//!  Healthy ────────────────────────▶ Suspect ────────────────────────▶ Quarantined
//!     ▲                                │  ▲                                │
//!     │ accepts >= heal_accepts        │  │ timeouts >=                    │ quarantine_ttl_ms
//!     │ or reject-streak decay         │  │ timeout_suspect_after          ▼
//!     └────────────────────────────────┘  └──(from Healthy)       Reprovisioning
//!     ▲                                                                   │
//!     └─────────────── accepted after re-provision backoff ───────────────┘
//!                      (rejected during Reprovisioning → Quarantined)
//! ```
//!
//! All time is logical milliseconds supplied by the caller — the
//! machine never reads a wall clock, so a fleet simulation driven from
//! a fixed seed replays byte-for-byte.

/// Lifecycle state of one registered device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceState {
    /// Verdicts flowing, nothing suspicious.
    Healthy,
    /// Recent rejects or timeouts; still challenged at full rate.
    Suspect,
    /// Reject threshold crossed (or admin order): challenges
    /// throttled, verdicts gated until the quarantine TTL expires.
    Quarantined,
    /// Quarantine TTL expired; the device must produce an accepted
    /// round after the re-provision backoff to return to service.
    Reprovisioning,
}

impl DeviceState {
    /// Stable lowercase name, used in JSON and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            DeviceState::Healthy => "healthy",
            DeviceState::Suspect => "suspect",
            DeviceState::Quarantined => "quarantined",
            DeviceState::Reprovisioning => "reprovisioning",
        }
    }

    /// Inverse of [`DeviceState::as_str`].
    pub fn parse(s: &str) -> Option<DeviceState> {
        Some(match s {
            "healthy" => DeviceState::Healthy,
            "suspect" => DeviceState::Suspect,
            "quarantined" => DeviceState::Quarantined,
            "reprovisioning" => DeviceState::Reprovisioning,
            _ => return None,
        })
    }
}

impl std::fmt::Display for DeviceState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An observation fed into the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A round whose evidence verified.
    Accepted,
    /// A round whose evidence was rejected (wire, auth, or replay).
    Rejected,
    /// A scheduled round the device never answered.
    Timeout,
    /// Operator override: quarantine now.
    AdminQuarantine,
    /// Operator override: return to Healthy now.
    AdminHeal,
}

impl Event {
    /// Stable lowercase name, used in fuzz failure rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            Event::Accepted => "accepted",
            Event::Rejected => "rejected",
            Event::Timeout => "timeout",
            Event::AdminQuarantine => "admin-quarantine",
            Event::AdminHeal => "admin-heal",
        }
    }
}

/// Why a transition fired — recorded so an operator (and the tests)
/// can audit every state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// Consecutive rejects reached [`Policy::suspect_after`].
    RejectStreak,
    /// Consecutive rejects reached [`Policy::quarantine_after`].
    RejectThreshold,
    /// Consecutive timeouts reached [`Policy::timeout_suspect_after`].
    TimeoutStreak,
    /// Consecutive accepts reached [`Policy::heal_accepts`].
    Healed,
    /// The reject/timeout streak aged past [`Policy::reject_decay_ms`].
    Decay,
    /// Time in quarantine reached [`Policy::quarantine_ttl_ms`].
    QuarantineTtl,
    /// An accepted round after the re-provision backoff gate.
    Reprovisioned,
    /// A rejected round while re-provisioning.
    ReprovisionFailed,
    /// Operator `quarantine` command.
    AdminQuarantine,
    /// Operator `heal` command.
    AdminHeal,
}

impl Cause {
    /// Stable kebab-case name, used in JSON and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            Cause::RejectStreak => "reject-streak",
            Cause::RejectThreshold => "reject-threshold",
            Cause::TimeoutStreak => "timeout-streak",
            Cause::Healed => "healed",
            Cause::Decay => "decay",
            Cause::QuarantineTtl => "quarantine-ttl",
            Cause::Reprovisioned => "reprovisioned",
            Cause::ReprovisionFailed => "reprovision-failed",
            Cause::AdminQuarantine => "admin-quarantine",
            Cause::AdminHeal => "admin-heal",
        }
    }

    /// Inverse of [`Cause::as_str`].
    pub fn parse(s: &str) -> Option<Cause> {
        Some(match s {
            "reject-streak" => Cause::RejectStreak,
            "reject-threshold" => Cause::RejectThreshold,
            "timeout-streak" => Cause::TimeoutStreak,
            "healed" => Cause::Healed,
            "decay" => Cause::Decay,
            "quarantine-ttl" => Cause::QuarantineTtl,
            "reprovisioned" => Cause::Reprovisioned,
            "reprovision-failed" => Cause::ReprovisionFailed,
            "admin-quarantine" => Cause::AdminQuarantine,
            "admin-heal" => Cause::AdminHeal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Cause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Logical time the transition fired.
    pub at_ms: u64,
    /// State before.
    pub from: DeviceState,
    /// State after.
    pub to: DeviceState,
    /// Why.
    pub cause: Cause,
}

/// The declarative fleet policy: every threshold the state machine
/// consults, in one plain struct an operator can read top to bottom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Policy {
    /// Consecutive rejects before `Healthy → Suspect`.
    pub suspect_after: u32,
    /// Consecutive rejects before `→ Quarantined`.
    pub quarantine_after: u32,
    /// Consecutive accepts before `Suspect → Healthy`.
    pub heal_accepts: u32,
    /// Consecutive timeouts before `Healthy → Suspect`. Timeouts
    /// alone never promote past Suspect — a flaky link is not
    /// evidence of compromise.
    pub timeout_suspect_after: u32,
    /// A reject/timeout streak older than this decays: streak counters
    /// reset and a Suspect device returns to Healthy.
    pub reject_decay_ms: u64,
    /// Time spent Quarantined before the device is offered
    /// re-provisioning.
    pub quarantine_ttl_ms: u64,
    /// Base re-provision backoff; doubles per quarantine entered
    /// (capped at [`Policy::backoff_cap_ms`]). An accepted round
    /// before the gate does not heal.
    pub reprovision_backoff_ms: u64,
    /// Upper bound on the doubled backoff.
    pub backoff_cap_ms: u64,
    /// Scheduler period between challenges to one healthy device.
    pub round_interval_ms: u64,
    /// Quarantined devices are challenged every Nth interval.
    pub quarantine_throttle: u32,
}

impl Default for Policy {
    fn default() -> Policy {
        Policy {
            suspect_after: 1,
            quarantine_after: 3,
            heal_accepts: 2,
            timeout_suspect_after: 3,
            reject_decay_ms: 60_000,
            quarantine_ttl_ms: 30_000,
            reprovision_backoff_ms: 5_000,
            backoff_cap_ms: 300_000,
            round_interval_ms: 1_000,
            quarantine_throttle: 8,
        }
    }
}

impl Policy {
    /// The re-provision gate for the `n`th quarantine (1-based):
    /// `reprovision_backoff_ms · 2^(n-1)`, capped.
    pub fn backoff_ms(&self, quarantine_count: u32) -> u64 {
        let doublings = quarantine_count.saturating_sub(1).min(32);
        self.reprovision_backoff_ms
            .saturating_mul(1u64 << doublings)
            .min(self.backoff_cap_ms)
    }

    /// Clamps every field into a sane range — the fuzz oracle feeds
    /// arbitrary values through this so a zero threshold can never
    /// wedge the machine.
    pub fn sanitized(mut self) -> Policy {
        self.suspect_after = self.suspect_after.max(1);
        self.quarantine_after = self.quarantine_after.max(self.suspect_after);
        self.heal_accepts = self.heal_accepts.max(1);
        self.timeout_suspect_after = self.timeout_suspect_after.max(1);
        self.reject_decay_ms = self.reject_decay_ms.max(1);
        self.quarantine_ttl_ms = self.quarantine_ttl_ms.max(1);
        self.round_interval_ms = self.round_interval_ms.max(1);
        self.quarantine_throttle = self.quarantine_throttle.max(1);
        self.backoff_cap_ms = self.backoff_cap_ms.max(self.reprovision_backoff_ms);
        self
    }
}

/// The per-device machine: current state plus the streak counters the
/// policy thresholds act on.
#[derive(Debug, Clone)]
pub struct DeviceMachine {
    state: DeviceState,
    /// Logical time the current state was entered.
    state_since_ms: u64,
    reject_streak: u32,
    accept_streak: u32,
    timeout_streak: u32,
    /// Last reject or timeout — the decay anchor.
    last_bad_ms: u64,
    /// Re-provision gate: accepts before this instant do not heal.
    gate_until_ms: u64,
    /// Times this device has entered Quarantined (drives backoff).
    pub quarantine_count: u32,
    /// Total rounds observed (accepted + rejected).
    pub rounds: u64,
    /// Total rejected rounds.
    pub rejects: u64,
    /// Total timeouts.
    pub timeouts: u64,
    /// Verdicts observed while Quarantined (counted, never acted on).
    pub gated: u64,
}

impl DeviceMachine {
    /// A fresh device, Healthy at logical time `now_ms`.
    pub fn new(now_ms: u64) -> DeviceMachine {
        DeviceMachine {
            state: DeviceState::Healthy,
            state_since_ms: now_ms,
            reject_streak: 0,
            accept_streak: 0,
            timeout_streak: 0,
            last_bad_ms: 0,
            gate_until_ms: 0,
            quarantine_count: 0,
            rounds: 0,
            rejects: 0,
            timeouts: 0,
            gated: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> DeviceState {
        self.state
    }

    /// Logical time the current state was entered.
    pub fn state_since_ms(&self) -> u64 {
        self.state_since_ms
    }

    /// Restores a machine from persisted fields (registry JSON).
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        state: DeviceState,
        state_since_ms: u64,
        quarantine_count: u32,
        rounds: u64,
        rejects: u64,
        timeouts: u64,
        gated: u64,
        gate_until_ms: u64,
    ) -> DeviceMachine {
        DeviceMachine {
            state,
            state_since_ms,
            reject_streak: 0,
            accept_streak: 0,
            timeout_streak: 0,
            last_bad_ms: state_since_ms,
            gate_until_ms,
            quarantine_count,
            rounds,
            rejects,
            timeouts,
            gated,
        }
    }

    /// The re-provision gate instant (0 when not re-provisioning).
    pub fn gate_until_ms(&self) -> u64 {
        self.gate_until_ms
    }

    fn go(&mut self, now_ms: u64, to: DeviceState, cause: Cause) -> Transition {
        let from = self.state;
        self.state = to;
        self.state_since_ms = now_ms;
        Transition {
            at_ms: now_ms,
            from,
            to,
            cause,
        }
    }

    /// Applies time-driven rules at logical time `now_ms`: streak
    /// decay and the quarantine TTL. Call before (or instead of) an
    /// event at each scheduler tick.
    pub fn tick(&mut self, policy: &Policy, now_ms: u64) -> Option<Transition> {
        // Streak decay: an old streak no longer counts toward the
        // quarantine threshold, whatever the state.
        let streak_active = self.reject_streak > 0 || self.timeout_streak > 0;
        if streak_active && now_ms.saturating_sub(self.last_bad_ms) >= policy.reject_decay_ms {
            self.reject_streak = 0;
            self.timeout_streak = 0;
            if self.state == DeviceState::Suspect {
                return Some(self.go(now_ms, DeviceState::Healthy, Cause::Decay));
            }
        }
        if self.state == DeviceState::Quarantined
            && now_ms.saturating_sub(self.state_since_ms) >= policy.quarantine_ttl_ms
        {
            self.gate_until_ms = now_ms.saturating_add(policy.backoff_ms(self.quarantine_count));
            return Some(self.go(now_ms, DeviceState::Reprovisioning, Cause::QuarantineTtl));
        }
        None
    }

    /// Applies one observation at logical time `now_ms`.
    pub fn apply(&mut self, policy: &Policy, now_ms: u64, event: Event) -> Option<Transition> {
        match event {
            Event::AdminQuarantine => {
                if self.state == DeviceState::Quarantined {
                    return None;
                }
                self.quarantine_count += 1;
                self.accept_streak = 0;
                Some(self.go(now_ms, DeviceState::Quarantined, Cause::AdminQuarantine))
            }
            Event::AdminHeal => {
                if self.state == DeviceState::Healthy {
                    return None;
                }
                self.reject_streak = 0;
                self.accept_streak = 0;
                self.timeout_streak = 0;
                self.gate_until_ms = 0;
                Some(self.go(now_ms, DeviceState::Healthy, Cause::AdminHeal))
            }
            Event::Accepted => {
                self.rounds += 1;
                if self.state == DeviceState::Quarantined {
                    // Gated: a quarantined device saying "all good"
                    // is exactly what a compromised device would say.
                    self.gated += 1;
                    return None;
                }
                self.reject_streak = 0;
                self.timeout_streak = 0;
                self.accept_streak += 1;
                match self.state {
                    DeviceState::Suspect if self.accept_streak >= policy.heal_accepts => {
                        Some(self.go(now_ms, DeviceState::Healthy, Cause::Healed))
                    }
                    DeviceState::Reprovisioning if now_ms >= self.gate_until_ms => {
                        self.gate_until_ms = 0;
                        Some(self.go(now_ms, DeviceState::Healthy, Cause::Reprovisioned))
                    }
                    _ => None,
                }
            }
            Event::Rejected => {
                self.rounds += 1;
                self.rejects += 1;
                if self.state == DeviceState::Quarantined {
                    self.gated += 1;
                    return None;
                }
                self.accept_streak = 0;
                self.reject_streak += 1;
                self.last_bad_ms = now_ms;
                match self.state {
                    DeviceState::Reprovisioning => {
                        self.quarantine_count += 1;
                        Some(self.go(now_ms, DeviceState::Quarantined, Cause::ReprovisionFailed))
                    }
                    _ if self.reject_streak >= policy.quarantine_after => {
                        self.quarantine_count += 1;
                        Some(self.go(now_ms, DeviceState::Quarantined, Cause::RejectThreshold))
                    }
                    DeviceState::Healthy if self.reject_streak >= policy.suspect_after => {
                        Some(self.go(now_ms, DeviceState::Suspect, Cause::RejectStreak))
                    }
                    _ => None,
                }
            }
            Event::Timeout => {
                self.timeouts += 1;
                self.accept_streak = 0;
                self.timeout_streak += 1;
                self.last_bad_ms = now_ms;
                match self.state {
                    // Timeouts never escalate past Suspect: silence is
                    // indistinguishable from a broken link.
                    DeviceState::Healthy if self.timeout_streak >= policy.timeout_suspect_after => {
                        Some(self.go(now_ms, DeviceState::Suspect, Cause::TimeoutStreak))
                    }
                    _ => None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_policy() -> Policy {
        Policy {
            suspect_after: 1,
            quarantine_after: 3,
            heal_accepts: 2,
            timeout_suspect_after: 2,
            reject_decay_ms: 100,
            quarantine_ttl_ms: 50,
            reprovision_backoff_ms: 10,
            backoff_cap_ms: 80,
            round_interval_ms: 10,
            quarantine_throttle: 4,
        }
    }

    #[test]
    fn reject_streak_walks_to_quarantine() {
        let p = quick_policy();
        let mut m = DeviceMachine::new(0);
        let t1 = m.apply(&p, 1, Event::Rejected).expect("suspect");
        assert_eq!(
            (t1.from, t1.to),
            (DeviceState::Healthy, DeviceState::Suspect)
        );
        assert!(m.apply(&p, 2, Event::Rejected).is_none());
        let t3 = m.apply(&p, 3, Event::Rejected).expect("quarantine");
        assert_eq!(t3.to, DeviceState::Quarantined);
        assert_eq!(t3.cause, Cause::RejectThreshold);
        assert_eq!(m.quarantine_count, 1);
    }

    #[test]
    fn accepts_interrupt_the_streak() {
        let p = quick_policy();
        let mut m = DeviceMachine::new(0);
        m.apply(&p, 1, Event::Rejected);
        m.apply(&p, 2, Event::Rejected);
        m.apply(&p, 3, Event::Accepted);
        // Streak reset: two more rejects only re-enter Suspect.
        m.apply(&p, 4, Event::Rejected);
        assert!(m.apply(&p, 5, Event::Rejected).is_none());
        assert_eq!(m.state(), DeviceState::Suspect);
    }

    #[test]
    fn timeouts_cap_at_suspect() {
        let p = quick_policy();
        let mut m = DeviceMachine::new(0);
        for t in 0..20 {
            m.apply(&p, t, Event::Timeout);
        }
        assert_eq!(m.state(), DeviceState::Suspect);
    }

    #[test]
    fn ttl_then_gated_accept_then_heal() {
        let p = quick_policy();
        let mut m = DeviceMachine::new(0);
        for t in 1..=3 {
            m.apply(&p, t, Event::Rejected);
        }
        assert_eq!(m.state(), DeviceState::Quarantined);
        // Verdicts while quarantined are gated.
        assert!(m.apply(&p, 10, Event::Accepted).is_none());
        assert_eq!(m.gated, 1);
        // TTL expires at 3 + 50.
        assert!(m.tick(&p, 52).is_none());
        let t = m.tick(&p, 53).expect("ttl transition");
        assert_eq!(t.to, DeviceState::Reprovisioning);
        // Gate is 53 + 10 (first quarantine): accept at 62 is too
        // early, accept at 63 heals.
        assert!(m.apply(&p, 62, Event::Accepted).is_none());
        let h = m.apply(&p, 63, Event::Accepted).expect("reprovisioned");
        assert_eq!(
            (h.to, h.cause),
            (DeviceState::Healthy, Cause::Reprovisioned)
        );
    }

    #[test]
    fn reprovision_reject_requarantines_with_doubled_backoff() {
        let p = quick_policy();
        let mut m = DeviceMachine::new(0);
        for t in 1..=3 {
            m.apply(&p, t, Event::Rejected);
        }
        m.tick(&p, 100).expect("ttl");
        let t = m.apply(&p, 101, Event::Rejected).expect("requarantine");
        assert_eq!(t.cause, Cause::ReprovisionFailed);
        assert_eq!(m.quarantine_count, 2);
        assert_eq!(p.backoff_ms(2), 20);
        assert_eq!(p.backoff_ms(5), 80, "capped");
    }

    #[test]
    fn suspect_decays_back_to_healthy() {
        let p = quick_policy();
        let mut m = DeviceMachine::new(0);
        m.apply(&p, 5, Event::Rejected);
        assert_eq!(m.state(), DeviceState::Suspect);
        assert!(m.tick(&p, 104).is_none());
        let t = m.tick(&p, 105).expect("decay");
        assert_eq!((t.to, t.cause), (DeviceState::Healthy, Cause::Decay));
    }

    #[test]
    fn admin_overrides_any_state() {
        let p = quick_policy();
        let mut m = DeviceMachine::new(0);
        let q = m.apply(&p, 1, Event::AdminQuarantine).expect("quarantined");
        assert_eq!(q.to, DeviceState::Quarantined);
        let h = m.apply(&p, 2, Event::AdminHeal).expect("healed");
        assert_eq!(h.to, DeviceState::Healthy);
        assert!(m.apply(&p, 3, Event::AdminHeal).is_none(), "idempotent");
    }
}
