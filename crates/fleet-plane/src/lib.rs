//! # rap-fleet — the active fleet control plane
//!
//! RAP-Track's verifier judges one attestation round at a time; this
//! crate turns a stream of those judgements into *fleet management*,
//! the ACFA-style auditing loop the ROADMAP's north star asks for:
//! continuously challenge every registered device, react to verdicts
//! with a declarative [`Policy`], and guarantee a remediation path for
//! devices that fail.
//!
//! The pieces, each its own module:
//!
//! - [`state`]: the per-device state machine
//!   (`Healthy → Suspect → Quarantined → Reprovisioning → Healthy`)
//!   and the [`Policy`] thresholds that drive it. Pure logic on a
//!   logical clock — no I/O, no wall time — which is what makes the
//!   fuzz oracle and the byte-for-byte determinism tests possible.
//! - [`registry`]: the fleet-wide device table, the transition audit
//!   log, a JSON round-trip for persistence and the admin plane, and
//!   [`FleetPlane`] — the shared, locked form with adapters for
//!   rap-serve's verdict hook and admin-extra extension points.
//! - [`sched`]: the periodic challenge scheduler; quarantined devices
//!   are throttled to every Nth interval.
//! - [`sim`]: a deterministic simulated fleet over loopback TCP —
//!   seeded actors (including a compromisable one that flips to
//!   forged reports mid-run) attesting against a real
//!   [`rap_serve::Server`], exercising compromise → detection →
//!   quarantine → heal end-to-end.
//!
//! The device side needs nothing new: all policy lives server-side
//! (Tiny-CFA's minimal-TCB framing), and the transport is the
//! existing pipelined/resumable rap-serve protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod registry;
pub mod sched;
pub mod sim;
pub mod state;

pub use registry::{FleetPlane, Registry, RegistryParseError, TransitionRecord};
pub use sched::Scheduler;
pub use sim::{run as run_sim, SimConfig, SimError, SimReport};
pub use state::{Cause, DeviceMachine, DeviceState, Event, Policy, Transition};
