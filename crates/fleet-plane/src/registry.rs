//! The device registry: every known device's [`DeviceMachine`], the
//! audit log of transitions, and a JSON round-trip so the registry can
//! be persisted by the CLI and exposed on the admin plane.
//!
//! [`Registry`] itself is pure and single-threaded (the caller
//! supplies logical time); [`FleetPlane`] wraps it in a lock plus a
//! logical clock so it can be shared between a rap-serve verdict hook,
//! the challenge scheduler, and the admin plane.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rap_obs::Json;
#[allow(deprecated)]
use rap_serve::VerdictHook;
use rap_serve::{AdminExtra, RoundEvent, RoundHook};

use crate::state::{Cause, DeviceMachine, DeviceState, Event, Policy, Transition};

/// One entry of the registry's audit log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionRecord {
    /// Which device transitioned.
    pub device: String,
    /// The transition itself (logical time, from, to, cause).
    pub transition: Transition,
    /// Short hash of the sealed [`VerdictRecord`](rap_track::VerdictRecord)
    /// whose verdict triggered the transition, when one did — the join
    /// key into the audit log. Time-driven transitions (decay, TTL)
    /// have none.
    pub evidence: Option<String>,
}

impl TransitionRecord {
    /// One-line rendering, stable across runs from the same seed —
    /// the fleet tests assert on this byte-for-byte. Evidence-carrying
    /// transitions append ` rec=<short-hash>` so the line can be
    /// joined against `rap audit show`.
    pub fn render(&self) -> String {
        let mut line = format!(
            "t={}ms {} {} -> {} ({})",
            self.transition.at_ms,
            self.device,
            self.transition.from,
            self.transition.to,
            self.transition.cause
        );
        if let Some(rec) = &self.evidence {
            line.push_str(&format!(" rec={rec}"));
        }
        line
    }
}

/// All registered devices plus the transition audit log.
#[derive(Debug, Clone)]
pub struct Registry {
    policy: Policy,
    devices: BTreeMap<String, DeviceMachine>,
    transitions: Vec<TransitionRecord>,
}

/// An error loading a registry from JSON.
#[derive(Debug)]
pub struct RegistryParseError(pub String);

impl std::fmt::Display for RegistryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "registry JSON: {}", self.0)
    }
}

impl std::error::Error for RegistryParseError {}

impl Registry {
    /// An empty registry under `policy`.
    pub fn new(policy: Policy) -> Registry {
        Registry {
            policy: policy.sanitized(),
            devices: BTreeMap::new(),
            transitions: Vec::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Registers `device` (Healthy) if unknown; returns its machine.
    pub fn register(&mut self, device: &str, now_ms: u64) -> &mut DeviceMachine {
        self.devices
            .entry(device.to_string())
            .or_insert_with(|| DeviceMachine::new(now_ms))
    }

    /// Looks up a device.
    pub fn device(&self, device: &str) -> Option<&DeviceMachine> {
        self.devices.get(device)
    }

    /// All devices, name-ordered (BTreeMap iteration is sorted, so
    /// every walk over the fleet is deterministic).
    pub fn devices(&self) -> impl Iterator<Item = (&String, &DeviceMachine)> {
        self.devices.iter()
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when no device is registered.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The audit log, in the order transitions fired.
    pub fn transitions(&self) -> &[TransitionRecord] {
        &self.transitions
    }

    /// The audit log rendered one line per transition.
    pub fn render_transitions(&self) -> String {
        let mut out = String::new();
        for r in &self.transitions {
            out.push_str(&r.render());
            out.push('\n');
        }
        out
    }

    /// Feeds one observation for `device` at logical `now_ms`,
    /// auto-registering unknown devices. Time-driven rules (decay,
    /// quarantine TTL) are applied first, so a single call is enough
    /// per scheduled round. Returns the transitions that fired (0–2:
    /// a tick transition and/or an event transition).
    pub fn observe(&mut self, device: &str, now_ms: u64, event: Event) -> Vec<Transition> {
        self.observe_with_evidence(device, now_ms, event, None)
    }

    /// [`observe`](Registry::observe), citing the sealed verdict record
    /// (by short hash) that carried the event. The evidence lands on
    /// the *event-driven* transition only — a time-driven (tick)
    /// transition firing in the same call was not caused by this
    /// verdict and stays unattributed.
    pub fn observe_with_evidence(
        &mut self,
        device: &str,
        now_ms: u64,
        event: Event,
        evidence: Option<&str>,
    ) -> Vec<Transition> {
        let policy = self.policy.clone();
        let machine = self.register(device, now_ms);
        let mut fired = Vec::new();
        if let Some(t) = machine.tick(&policy, now_ms) {
            fired.push((t, None));
        }
        if let Some(t) = machine.apply(&policy, now_ms, event) {
            fired.push((t, evidence));
        }
        for (t, rec) in &fired {
            self.transitions.push(TransitionRecord {
                device: device.to_string(),
                transition: *t,
                evidence: rec.map(str::to_string),
            });
        }
        fired.into_iter().map(|(t, _)| t).collect()
    }

    /// Applies time-driven rules to every device at `now_ms` (the
    /// scheduler calls this each tick so quarantine TTLs expire even
    /// for devices that are not being challenged).
    pub fn tick_all(&mut self, now_ms: u64) -> Vec<TransitionRecord> {
        let policy = self.policy.clone();
        let mut fired = Vec::new();
        for (name, machine) in self.devices.iter_mut() {
            if let Some(t) = machine.tick(&policy, now_ms) {
                fired.push(TransitionRecord {
                    device: name.clone(),
                    transition: t,
                    evidence: None,
                });
            }
        }
        self.transitions.extend(fired.iter().cloned());
        fired
    }

    /// Device counts per state, indexed Healthy, Suspect, Quarantined,
    /// Reprovisioning.
    pub fn state_counts(&self) -> [u64; 4] {
        let mut counts = [0u64; 4];
        for m in self.devices.values() {
            let idx = match m.state() {
                DeviceState::Healthy => 0,
                DeviceState::Suspect => 1,
                DeviceState::Quarantined => 2,
                DeviceState::Reprovisioning => 3,
            };
            counts[idx] += 1;
        }
        counts
    }

    /// Serializes policy, devices, counts, and the audit log.
    pub fn to_json(&self) -> Json {
        let p = &self.policy;
        let counts = self.state_counts();
        Json::obj([
            (
                "policy",
                Json::obj([
                    ("suspect_after", Json::Uint(u64::from(p.suspect_after))),
                    (
                        "quarantine_after",
                        Json::Uint(u64::from(p.quarantine_after)),
                    ),
                    ("heal_accepts", Json::Uint(u64::from(p.heal_accepts))),
                    (
                        "timeout_suspect_after",
                        Json::Uint(u64::from(p.timeout_suspect_after)),
                    ),
                    ("reject_decay_ms", Json::Uint(p.reject_decay_ms)),
                    ("quarantine_ttl_ms", Json::Uint(p.quarantine_ttl_ms)),
                    (
                        "reprovision_backoff_ms",
                        Json::Uint(p.reprovision_backoff_ms),
                    ),
                    ("backoff_cap_ms", Json::Uint(p.backoff_cap_ms)),
                    ("round_interval_ms", Json::Uint(p.round_interval_ms)),
                    (
                        "quarantine_throttle",
                        Json::Uint(u64::from(p.quarantine_throttle)),
                    ),
                ]),
            ),
            (
                "counts",
                Json::obj([
                    ("healthy", Json::Uint(counts[0])),
                    ("suspect", Json::Uint(counts[1])),
                    ("quarantined", Json::Uint(counts[2])),
                    ("reprovisioning", Json::Uint(counts[3])),
                ]),
            ),
            (
                "devices",
                Json::Obj(
                    self.devices
                        .iter()
                        .map(|(name, m)| {
                            (
                                name.clone(),
                                Json::obj([
                                    ("state", Json::Str(m.state().as_str().to_string())),
                                    ("since_ms", Json::Uint(m.state_since_ms())),
                                    ("rounds", Json::Uint(m.rounds)),
                                    ("rejects", Json::Uint(m.rejects)),
                                    ("timeouts", Json::Uint(m.timeouts)),
                                    ("gated", Json::Uint(m.gated)),
                                    (
                                        "quarantine_count",
                                        Json::Uint(u64::from(m.quarantine_count)),
                                    ),
                                    ("gate_until_ms", Json::Uint(m.gate_until_ms())),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "transitions",
                Json::Arr(
                    self.transitions
                        .iter()
                        .map(|r| {
                            let mut fields = vec![
                                ("device".to_string(), Json::Str(r.device.clone())),
                                ("at_ms".to_string(), Json::Uint(r.transition.at_ms)),
                                (
                                    "from".to_string(),
                                    Json::Str(r.transition.from.as_str().to_string()),
                                ),
                                (
                                    "to".to_string(),
                                    Json::Str(r.transition.to.as_str().to_string()),
                                ),
                                (
                                    "cause".to_string(),
                                    Json::Str(r.transition.cause.as_str().to_string()),
                                ),
                            ];
                            // Optional so registries persisted before
                            // evidence existed round-trip byte-identically.
                            if let Some(rec) = &r.evidence {
                                fields.push(("rec".to_string(), Json::Str(rec.clone())));
                            }
                            Json::Obj(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Inverse of [`Registry::to_json`] — used by `rap fleet
    /// status`/`quarantine`/`heal` to operate on a persisted registry.
    pub fn from_json(json: &Json) -> Result<Registry, RegistryParseError> {
        let missing = |what: &str| RegistryParseError(format!("missing {what}"));
        let pj = json.get("policy").ok_or_else(|| missing("policy"))?;
        let pu = |key: &str| -> Result<u64, RegistryParseError> {
            pj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| RegistryParseError(format!("missing or non-numeric policy.{key}")))
        };
        let policy = Policy {
            suspect_after: pu("suspect_after")? as u32,
            quarantine_after: pu("quarantine_after")? as u32,
            heal_accepts: pu("heal_accepts")? as u32,
            timeout_suspect_after: pu("timeout_suspect_after")? as u32,
            reject_decay_ms: pu("reject_decay_ms")?,
            quarantine_ttl_ms: pu("quarantine_ttl_ms")?,
            reprovision_backoff_ms: pu("reprovision_backoff_ms")?,
            backoff_cap_ms: pu("backoff_cap_ms")?,
            round_interval_ms: pu("round_interval_ms")?,
            quarantine_throttle: pu("quarantine_throttle")? as u32,
        };
        let mut registry = Registry::new(policy);
        let devices = json
            .get("devices")
            .and_then(Json::entries)
            .ok_or_else(|| missing("devices"))?;
        for (name, d) in devices {
            let du = |key: &str| -> Result<u64, RegistryParseError> {
                d.get(key).and_then(Json::as_u64).ok_or_else(|| {
                    RegistryParseError(format!("device {name}: missing or non-numeric {key}"))
                })
            };
            let state = d
                .get("state")
                .and_then(Json::as_str)
                .and_then(DeviceState::parse)
                .ok_or_else(|| RegistryParseError(format!("device {name}: bad state")))?;
            let machine = DeviceMachine::restore(
                state,
                du("since_ms")?,
                du("quarantine_count")? as u32,
                du("rounds")?,
                du("rejects")?,
                du("timeouts")?,
                du("gated")?,
                du("gate_until_ms")?,
            );
            registry.devices.insert(name.clone(), machine);
        }
        let transitions = json
            .get("transitions")
            .and_then(Json::as_array)
            .ok_or_else(|| missing("transitions"))?;
        for t in transitions {
            let device = t
                .get("device")
                .and_then(Json::as_str)
                .ok_or_else(|| missing("transition device"))?
                .to_string();
            let state_of = |key: &str| -> Result<DeviceState, RegistryParseError> {
                t.get(key)
                    .and_then(Json::as_str)
                    .and_then(DeviceState::parse)
                    .ok_or_else(|| RegistryParseError(format!("transition: bad {key}")))
            };
            registry.transitions.push(TransitionRecord {
                device,
                transition: Transition {
                    at_ms: t
                        .get("at_ms")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| missing("transition at_ms"))?,
                    from: state_of("from")?,
                    to: state_of("to")?,
                    cause: t
                        .get("cause")
                        .and_then(Json::as_str)
                        .and_then(Cause::parse)
                        .ok_or_else(|| missing("transition cause"))?,
                },
                evidence: t.get("rec").and_then(Json::as_str).map(str::to_string),
            });
        }
        Ok(registry)
    }
}

/// Updates the fleet state gauges from `counts` (same order as
/// [`Registry::state_counts`]).
fn publish_state_gauges(counts: [u64; 4]) {
    rap_obs::gauge!("fleet_devices_healthy").set(counts[0] as i64);
    rap_obs::gauge!("fleet_devices_suspect").set(counts[1] as i64);
    rap_obs::gauge!("fleet_devices_quarantined").set(counts[2] as i64);
    rap_obs::gauge!("fleet_devices_reprovisioning").set(counts[3] as i64);
}

/// The shared control plane: a locked [`Registry`] plus a logical
/// clock, with adapters for rap-serve's [`VerdictHook`] and
/// [`AdminExtra`] hooks and rap-obs counters/gauges published on every
/// observation.
#[derive(Clone)]
pub struct FleetPlane {
    inner: Arc<FleetPlaneInner>,
}

struct FleetPlaneInner {
    registry: Mutex<Registry>,
    /// Logical milliseconds; the driver (scheduler or simulation)
    /// advances this, everything else only reads it.
    now_ms: AtomicU64,
}

impl FleetPlane {
    /// A fresh plane at logical time 0.
    pub fn new(policy: Policy) -> FleetPlane {
        FleetPlane {
            inner: Arc::new(FleetPlaneInner {
                registry: Mutex::new(Registry::new(policy)),
                now_ms: AtomicU64::new(0),
            }),
        }
    }

    /// Current logical time.
    pub fn now_ms(&self) -> u64 {
        self.inner.now_ms.load(Ordering::Acquire)
    }

    /// Advances the logical clock (monotone: going backwards is a
    /// no-op so racing drivers cannot rewind time).
    pub fn set_now_ms(&self, now_ms: u64) {
        self.inner.now_ms.fetch_max(now_ms, Ordering::AcqRel);
    }

    /// Registers a device (idempotent).
    pub fn register(&self, device: &str) {
        let now = self.now_ms();
        let mut reg = self.inner.registry.lock().unwrap();
        reg.register(device, now);
        publish_state_gauges(reg.state_counts());
    }

    /// Feeds one observation at the current logical time, publishing
    /// metrics. Returns the transitions that fired.
    pub fn observe(&self, device: &str, event: Event) -> Vec<Transition> {
        self.observe_with_evidence(device, event, None)
    }

    /// [`observe`](FleetPlane::observe), citing the sealed verdict
    /// record (by short hash) that carried the event — see
    /// [`Registry::observe_with_evidence`].
    pub fn observe_with_evidence(
        &self,
        device: &str,
        event: Event,
        evidence: Option<&str>,
    ) -> Vec<Transition> {
        let now = self.now_ms();
        let mut reg = self.inner.registry.lock().unwrap();
        let was_quarantined =
            reg.device(device).map(DeviceMachine::state) == Some(DeviceState::Quarantined);
        let fired = reg.observe_with_evidence(device, now, event, evidence);
        match event {
            Event::Accepted | Event::Rejected => {
                rap_obs::counter!("fleet_verdicts_total").inc();
                if was_quarantined {
                    rap_obs::counter!("fleet_verdicts_gated_total").inc();
                }
            }
            Event::Timeout => rap_obs::counter!("fleet_timeouts_total").inc(),
            Event::AdminQuarantine | Event::AdminHeal => {
                rap_obs::counter!("fleet_admin_commands_total").inc()
            }
        }
        rap_obs::counter!("fleet_transitions_total").add(fired.len() as u64);
        publish_state_gauges(reg.state_counts());
        fired
    }

    /// Applies time-driven rules fleet-wide at the current logical
    /// time.
    pub fn tick_all(&self) -> Vec<TransitionRecord> {
        let now = self.now_ms();
        let mut reg = self.inner.registry.lock().unwrap();
        let fired = reg.tick_all(now);
        rap_obs::counter!("fleet_transitions_total").add(fired.len() as u64);
        publish_state_gauges(reg.state_counts());
        fired
    }

    /// Runs `f` under the registry lock (snapshots, assertions).
    pub fn with_registry<R>(&self, f: impl FnOnce(&Registry) -> R) -> R {
        f(&self.inner.registry.lock().unwrap())
    }

    /// The registry serialized, for the admin plane and CLI.
    pub fn to_json(&self) -> Json {
        self.inner.registry.lock().unwrap().to_json()
    }

    /// A [`VerdictHook`] for [`rap_serve::ServerConfig::verdict_hook`]
    /// — every verified round flows into this plane.
    ///
    /// Deprecated bool-form shim: prefer
    /// [`round_hook`](FleetPlane::round_hook), which also attributes
    /// transitions to the sealed record that triggered them.
    #[deprecated(
        since = "0.1.0",
        note = "use round_hook, which cites the sealed VerdictRecord as transition evidence"
    )]
    #[allow(deprecated)]
    pub fn verdict_hook(&self) -> VerdictHook {
        let plane = self.clone();
        VerdictHook::new(move |device, accepted| {
            let event = if accepted {
                Event::Accepted
            } else {
                Event::Rejected
            };
            plane.observe(device, event);
        })
    }

    /// A [`RoundHook`] for [`rap_serve::ServerConfig::round_hook`] —
    /// every verified round flows into this plane, and transitions it
    /// fires cite the sealed record's short hash as evidence (the join
    /// key into the audit log).
    pub fn round_hook(&self) -> RoundHook {
        let plane = self.clone();
        RoundHook::new(move |round| {
            // RoundEvent is non_exhaustive; future event kinds are not
            // verdicts and do not feed the state machine.
            if let RoundEvent::Verdict { device, record } = round {
                let event = if record.accepted() {
                    Event::Accepted
                } else {
                    Event::Rejected
                };
                plane.observe_with_evidence(device, event, Some(&record.short_hash()));
            }
        })
    }

    /// An [`AdminExtra`] exposing this plane as a top-level `"fleet"`
    /// section of the admin STATS JSON.
    pub fn admin_extra(&self) -> AdminExtra {
        let plane = self.clone();
        AdminExtra::new(move || vec![("fleet".to_string(), plane.to_json())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_preserves_states_and_log() {
        let mut reg = Registry::new(Policy::default());
        reg.observe("dev-a", 10, Event::Rejected);
        reg.observe("dev-a", 20, Event::Rejected);
        reg.observe("dev-a", 30, Event::Rejected);
        reg.observe("dev-b", 30, Event::Accepted);
        assert_eq!(
            reg.device("dev-a").unwrap().state(),
            DeviceState::Quarantined
        );
        let json = reg.to_json();
        let back = Registry::from_json(&json).expect("parses");
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.device("dev-a").unwrap().state(),
            DeviceState::Quarantined
        );
        assert_eq!(back.device("dev-b").unwrap().state(), DeviceState::Healthy);
        assert_eq!(back.transitions().len(), reg.transitions().len());
        assert_eq!(back.to_json().to_compact(), json.to_compact());
    }

    #[test]
    fn observe_auto_registers_and_logs() {
        let mut reg = Registry::new(Policy::default());
        let fired = reg.observe("dev-x", 5, Event::Rejected);
        assert_eq!(fired.len(), 1);
        assert_eq!(
            reg.render_transitions(),
            "t=5ms dev-x healthy -> suspect (reject-streak)\n"
        );
    }

    #[test]
    fn plane_clock_is_monotone() {
        let plane = FleetPlane::new(Policy::default());
        plane.set_now_ms(100);
        plane.set_now_ms(50);
        assert_eq!(plane.now_ms(), 100);
    }
}
