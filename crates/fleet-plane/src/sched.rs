//! The periodic challenge scheduler: decides *when* each registered
//! device is next challenged, in logical time, with quarantined
//! devices throttled to every Nth interval.
//!
//! The scheduler is deliberately dumb — a due-time map, no threads.
//! The driver (a fleet simulation, or a deployment loop mapping
//! logical to wall time) advances the clock, asks [`Scheduler::due`]
//! who to challenge, runs the rounds, and calls
//! [`Scheduler::reschedule`] with each device's post-round state.

use std::collections::BTreeMap;

use crate::state::{DeviceState, Policy};

/// Per-device next-challenge times in logical milliseconds.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    next_due_ms: BTreeMap<String, u64>,
}

impl Scheduler {
    /// An empty schedule.
    pub fn new() -> Scheduler {
        Scheduler::default()
    }

    /// Registers `device`, first due at `now_ms` (idempotent — an
    /// already-scheduled device keeps its slot).
    pub fn add(&mut self, device: &str, now_ms: u64) {
        self.next_due_ms.entry(device.to_string()).or_insert(now_ms);
    }

    /// Removes `device` from the schedule.
    pub fn remove(&mut self, device: &str) {
        self.next_due_ms.remove(device);
    }

    /// Devices due at `now_ms`, name-ordered (BTreeMap iteration), so
    /// a fixed seed drives rounds in a reproducible order.
    pub fn due(&self, now_ms: u64) -> Vec<String> {
        self.next_due_ms
            .iter()
            .filter(|(_, &due)| due <= now_ms)
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// Schedules `device`'s next challenge after a round (or skipped
    /// round) at `now_ms`: one interval ahead normally,
    /// [`Policy::quarantine_throttle`] intervals ahead while
    /// quarantined. Returns the new due time.
    pub fn reschedule(
        &mut self,
        device: &str,
        now_ms: u64,
        state: DeviceState,
        policy: &Policy,
    ) -> u64 {
        let factor = if state == DeviceState::Quarantined {
            u64::from(policy.quarantine_throttle.max(1))
        } else {
            1
        };
        let due = now_ms.saturating_add(policy.round_interval_ms.saturating_mul(factor));
        self.next_due_ms.insert(device.to_string(), due);
        due
    }

    /// The earliest due time across the fleet (None when empty) — a
    /// wall-clock driver sleeps until this.
    pub fn next_wake_ms(&self) -> Option<u64> {
        self.next_due_ms.values().copied().min()
    }

    /// Number of scheduled devices.
    pub fn len(&self) -> usize {
        self.next_due_ms.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.next_due_ms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_throttles_by_policy_factor() {
        let policy = Policy {
            round_interval_ms: 10,
            quarantine_throttle: 4,
            ..Policy::default()
        };
        let mut s = Scheduler::new();
        s.add("a", 0);
        s.add("b", 0);
        assert_eq!(s.due(0), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(s.reschedule("a", 0, DeviceState::Healthy, &policy), 10);
        assert_eq!(s.reschedule("b", 0, DeviceState::Quarantined, &policy), 40);
        assert_eq!(s.due(10), vec!["a".to_string()]);
        assert_eq!(s.due(40), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(s.next_wake_ms(), Some(10));
    }

    #[test]
    fn add_is_idempotent() {
        let mut s = Scheduler::new();
        s.add("a", 5);
        s.add("a", 99);
        assert_eq!(s.next_wake_ms(), Some(5));
    }
}
