//! End-to-end checks of the fuzzing harness itself: the oracles hold
//! on real campaigns, summaries are deterministic, and an injected
//! fault (sabotage) is caught, reported with a working repro seed and
//! minimized.

use rap_fuzz::{run, FuzzConfig};

fn iters_from_env(default: u64) -> u64 {
    std::env::var("RAP_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The three oracles hold across a campaign that exercises every
/// generator feature (set `RAP_FUZZ_ITERS` to scale this up).
#[test]
fn campaign_oracles_pass() {
    let summary = run(&FuzzConfig {
        seed: 0xF00D,
        iters: iters_from_env(60),
        ..FuzzConfig::default()
    });
    assert!(
        summary.failures.is_empty(),
        "oracle failures:\n{}",
        summary.render()
    );
    assert!(summary.ok());
    // The campaign must have exercised the interesting machinery, not
    // vacuously passed on trivial programs.
    assert!(summary.totals.mtb_packets > 0, "no MTB packets logged");
    assert!(
        summary.totals.loop_records > 0,
        "no DWT loop records logged"
    );
    assert!(
        summary.totals.path_events > 0,
        "no path events reconstructed"
    );
    assert!(
        summary.totals.reports > summary.cases_run,
        "watermark splitting never produced partial reports"
    );
    // Mutations must both get rejected (overwhelmingly) and routinely
    // survive framing to reach the replay layer.
    assert!(!summary.verdicts.is_empty());
    assert!(summary.verdicts.keys().any(|k| k.starts_with("byte:")));
    assert!(summary.verdicts.keys().any(|k| k.starts_with("record:")));
}

/// Equal configurations yield byte-identical summaries — the repro
/// contract (`rap fuzz --seed N --iters K` twice) at the library
/// level.
#[test]
fn campaigns_are_deterministic() {
    let cfg = FuzzConfig {
        seed: 1,
        iters: 20,
        ..FuzzConfig::default()
    };
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(a.render(), b.render());
    assert_eq!(a.to_json().to_compact(), b.to_json().to_compact());
}

/// The inverted sabotage oracle: the injected MTB corruption must be
/// detected, the failure must replay from its printed case seed, and
/// the minimizer must shrink the offending program.
#[test]
fn sabotage_is_caught_reproduced_and_minimized() {
    let cfg = FuzzConfig {
        seed: 2,
        iters: 30,
        sabotage: true,
        max_failures: 1,
        ..FuzzConfig::default()
    };
    let summary = run(&cfg);
    assert!(
        summary.ok(),
        "sabotage went undetected:\n{}",
        summary.render()
    );
    let failure = &summary.failures[0];
    assert_eq!(failure.oracle, "sabotage");
    assert!(failure.detail.contains("detected"));
    assert!(failure.minimized_stmt_count <= failure.stmt_count);
    assert!(failure.minimize_evals > 0);
    assert!(failure.repro.contains("--sabotage"));

    // Replay the failure in isolation from the printed case seed: it
    // must fail again, for the same oracle.
    let replayed = run(&FuzzConfig {
        replay: Some(failure.case_seed),
        sabotage: true,
        ..FuzzConfig::default()
    });
    assert_eq!(replayed.cases_run, 1);
    assert_eq!(replayed.failures.len(), 1);
    assert_eq!(replayed.failures[0].oracle, "sabotage");
    assert_eq!(replayed.failures[0].case_seed, failure.case_seed);
}
