//! The fleet-registry transition oracle: random verdict / timeout /
//! admin-command sequences against [`rap_fleet`]'s per-device state
//! machine, under `catch_unwind`.
//!
//! The contract fuzzed here is the one the fleet control plane's
//! security argument rests on:
//!
//! 1. **No panic, ever** — any event sequence under any (sanitized)
//!    policy yields a typed state.
//! 2. **Transition continuity** — every reported transition starts at
//!    the state the machine was actually in.
//! 3. **Quarantine provenance** — `Quarantined` is entered only
//!    through a REJECTED verdict (reject threshold or re-provision
//!    failure) or an explicit admin command. In particular timeouts
//!    alone can never quarantine a device: a flaky uplink must not
//!    look like a compromise.
//! 4. **Bounded bookkeeping** — the audit log grows by at most two
//!    entries per observation (one time-driven, one event-driven).

use std::panic::{catch_unwind, AssertUnwindSafe};

use rap_fleet::{Cause, DeviceState, Event, Policy, Registry};

use crate::oracle::CaseFailure;
use crate::rng::Rng;

/// Counters from one passing registry case.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegistryCaseResult {
    /// Events applied.
    pub events: u64,
    /// Transitions fired.
    pub transitions: u64,
    /// Times any device entered Quarantined.
    pub quarantines: u64,
}

/// One step of a generated sequence: advance logical time, then apply
/// an event to one of the case's devices.
#[derive(Debug, Clone, Copy)]
struct Step {
    device: usize,
    advance_ms: u64,
    event: Event,
}

fn gen_policy(rng: &mut Rng) -> Policy {
    // Raw draws cover degenerate values (zeros, huge numbers);
    // `sanitized` is part of the contract under test — whatever the
    // operator writes, the machine must stay sound.
    Policy {
        suspect_after: rng.next_u64() as u32 % 4,
        quarantine_after: rng.next_u64() as u32 % 6,
        heal_accepts: rng.next_u64() as u32 % 4,
        timeout_suspect_after: rng.next_u64() as u32 % 4,
        reject_decay_ms: rng.next_u64() % 500,
        quarantine_ttl_ms: rng.next_u64() % 500,
        reprovision_backoff_ms: rng.next_u64() % 200,
        backoff_cap_ms: rng.next_u64() % 1_000,
        round_interval_ms: rng.next_u64() % 50,
        quarantine_throttle: rng.next_u64() as u32 % 8,
    }
    .sanitized()
}

fn gen_event(rng: &mut Rng) -> Event {
    // Admin commands are rare, like in a real fleet; verdicts and
    // timeouts dominate.
    match rng.next_u64() % 16 {
        0 => Event::AdminQuarantine,
        1 => Event::AdminHeal,
        2..=6 => Event::Timeout,
        7..=10 => Event::Rejected,
        _ => Event::Accepted,
    }
}

/// Runs one registry case for `case_seed`. Deterministic: the same
/// seed generates the same policy, devices, and step sequence.
pub fn run_registry_case(case_seed: u64) -> Result<RegistryCaseResult, CaseFailure> {
    let fail = |detail: String| CaseFailure {
        oracle: "registry",
        detail,
    };
    let mut rng = Rng::new(case_seed ^ 0xF1EE_7C47);
    let policy = gen_policy(&mut rng);
    let device_count = 1 + (rng.next_u64() as usize % 4);
    let steps: Vec<Step> = (0..64 + rng.next_u64() % 192)
        .map(|_| Step {
            device: rng.next_u64() as usize % device_count,
            advance_ms: rng.next_u64() % 200,
            event: gen_event(&mut rng),
        })
        .collect();

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut registry = Registry::new(policy.clone());
        let mut result = RegistryCaseResult::default();
        let mut now_ms = 0u64;
        for (i, step) in steps.iter().enumerate() {
            now_ms = now_ms.saturating_add(step.advance_ms);
            let device = format!("fuzz-dev-{}", step.device);
            let before = registry
                .device(&device)
                .map(|m| m.state())
                .unwrap_or(DeviceState::Healthy);
            let log_before = registry.transitions().len();
            let fired = registry.observe(&device, now_ms, step.event);
            result.events += 1;

            // Invariant 4: at most one tick + one event transition.
            if fired.len() > 2 {
                return Err(format!(
                    "step {i}: {} transitions from one observation",
                    fired.len()
                ));
            }
            if registry.transitions().len() != log_before + fired.len() {
                return Err(format!("step {i}: audit log out of sync with observe()"));
            }

            // Invariant 2: continuity through the fired chain.
            let mut state = before;
            for t in &fired {
                if t.from != state {
                    return Err(format!(
                        "step {i}: transition from {} but machine was {}",
                        t.from, state
                    ));
                }
                if t.from == t.to {
                    return Err(format!("step {i}: self-transition to {}", t.to));
                }
                state = t.to;
                result.transitions += 1;

                // Invariant 3: quarantine provenance.
                if t.to == DeviceState::Quarantined {
                    result.quarantines += 1;
                    let cause_ok = matches!(
                        t.cause,
                        Cause::RejectThreshold | Cause::ReprovisionFailed | Cause::AdminQuarantine
                    );
                    let event_ok = matches!(step.event, Event::Rejected | Event::AdminQuarantine);
                    if !cause_ok || !event_ok {
                        return Err(format!(
                            "step {i}: entered quarantine via {:?} (cause {})",
                            step.event, t.cause
                        ));
                    }
                }
            }
            let after = registry
                .device(&device)
                .map(|m| m.state())
                .unwrap_or(DeviceState::Healthy);
            if after != state {
                return Err(format!(
                    "step {i}: machine reports {} but transitions end at {}",
                    after, state
                ));
            }

            // Timeouts specifically must never leave the device worse
            // than Suspect unless it already was.
            if step.event == Event::Timeout
                && before <= DeviceState::Suspect
                && after > DeviceState::Suspect
            {
                return Err(format!(
                    "step {i}: timeout promoted {} -> {}",
                    before, after
                ));
            }
        }
        Ok(result)
    }));

    match outcome {
        Ok(Ok(result)) => Ok(result),
        Ok(Err(detail)) => Err(fail(detail)),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            Err(fail(format!("panicked: {msg}")))
        }
    }
}
