//! The deterministic PRNG substrate.
//!
//! SplitMix64: tiny, statistically solid, and — crucially for the
//! repro contract — a pure function of its seed. The same generator is
//! used by `tests/properties.rs`; it lives here in library form so the
//! CLI, the benches and the integration tests all draw from one
//! implementation.

/// A SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a stream from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.0)
    }

    /// Next 32 random bits (upper half of the 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 8 random bits.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A random boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi` (a caller bug).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform index below `n`.
    pub fn usize_below(&mut self, n: usize) -> usize {
        self.range(0, n as u64) as usize
    }

    /// `len` random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u8()).collect()
    }

    /// Forks an independent child stream — used to give every fuzz
    /// case its own seed so a single case replays without re-running
    /// the whole campaign.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

/// The SplitMix64 finalizer: a strong 64-bit mix usable on its own to
/// derive per-case seeds (`case_seed = mix(seed ^ index)` style).
pub fn mix(z: u64) -> u64 {
    let mut z = z;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of case `index` within a campaign started from
/// `campaign_seed`. Pure, so printed case seeds replay exactly via
/// `rap fuzz --replay <case_seed>`.
pub fn case_seed(campaign_seed: u64, index: u64) -> u64 {
    mix(campaign_seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_is_in_bounds() {
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            let v = rng.range(5, 17);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn case_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..64).map(|i| case_seed(1, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(seeds.len(), dedup.len());
    }
}
