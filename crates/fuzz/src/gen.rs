//! The structured random-program generator.
//!
//! Programs are statement trees over a fixed register discipline —
//! R0 accumulator, R1 entropy, R2–R4 loop counters by nesting depth,
//! R5/R6 scratch, R7 scratch-RAM base — so that any generated tree
//! lowers to a terminating, deterministic T-lite program. The grammar
//! deliberately spans every control-transfer class the RAP-Track
//! pipeline instruments: straight-line arithmetic, conditional
//! branches over four condition codes, direct and indirect calls into
//! a small library (including a nested call), static-count loops,
//! *hidden*-count loops (the trip count flows through a register move,
//! defeating the linker's static analysis and forcing DWT loop
//! logging), and loops with a conditional forward exit.

use crate::rng::Rng;
use armv8m_isa::{Asm, Cond, Module, Reg};
use mcu_sim::RAM_BASE;

/// The library function a call statement targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lib {
    /// `R0 += R0; ret` — a leaf returning via POP-free `bx lr`.
    Double,
    /// Saves R4, perturbs R0, calls [`Lib::Double`], returns via
    /// `pop {r4, pc}` — exercises nested calls and the POP return.
    Mix,
    /// `R0 += 1; bx lr` — the indirect-call target of choice.
    Inc,
}

impl Lib {
    fn name(self) -> &'static str {
        match self {
            Lib::Double => "lib_double",
            Lib::Mix => "lib_mix",
            Lib::Inc => "lib_inc",
        }
    }
}

/// The comparison a conditional branch tests (signed, on small
/// non-negative operands, so signed vs unsigned never matters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Branch on equal.
    Eq,
    /// Branch on not-equal.
    Ne,
    /// Branch on less-than.
    Lt,
    /// Branch on greater-or-equal.
    Ge,
}

/// One statement of a generated program.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `R0 += k`.
    Add(u8),
    /// `R1 = R1 * 31 + k` — drives branch-condition variety.
    Stir(u8),
    /// Spill R1 to scratch RAM, reload, fold into R0 — exercises the
    /// data bus and makes the RAM digest in the end-state comparison
    /// meaningful.
    Store(u8),
    /// `if ((R1 & 7) cmp k) { then } else { else }`.
    If {
        /// The comparison relating `R1 & 7` to `k`.
        cmp: Cmp,
        /// The immediate compared against.
        k: u8,
        /// Statements on the taken path.
        then_b: Vec<Stmt>,
        /// Statements on the fall-through path.
        else_b: Vec<Stmt>,
    },
    /// A countdown loop of `n` iterations. When `hidden` is set the
    /// trip count reaches the counter through a register move, which
    /// the linker cannot constant-fold — the loop becomes a
    /// DWT-logged (non-deterministic) loop instead of a replayed one.
    Loop {
        /// The trip count (1..=5).
        n: u8,
        /// Whether the count is hidden from static analysis.
        hidden: bool,
        /// The loop body.
        body: Vec<Stmt>,
    },
    /// A countdown loop of at most `n` iterations with a conditional
    /// forward exit once the counter reaches `k` — a forward branch
    /// out of a loop region.
    LoopBreak {
        /// The maximum trip count.
        n: u8,
        /// The counter value that triggers the early exit.
        k: u8,
        /// The loop body.
        body: Vec<Stmt>,
    },
    /// A direct `bl` to a library function.
    Call(Lib),
    /// An indirect `blx` through R6 to a library function.
    CallIndirect(Lib),
}

/// A generated program: a top-level statement list. Kept as a tree
/// (not text) so the minimizer can shrink structurally.
#[derive(Debug, Clone)]
pub struct Program {
    /// The top-level statements of `main`.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// Generates a random program from the RNG stream. Same stream
    /// position, same program.
    pub fn generate(rng: &mut Rng) -> Program {
        let n = rng.range(1, 8) as usize;
        Program {
            stmts: (0..n).map(|_| gen_stmt(rng, 3)).collect(),
        }
    }

    /// Counts statements recursively — the size metric the minimizer
    /// reports shrinkage against.
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If { then_b, else_b, .. } => 1 + count(then_b) + count(else_b),
                    Stmt::Loop { body, .. } | Stmt::LoopBreak { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.stmts)
    }

    /// Lowers the program to an assembly module with the three library
    /// functions appended. Label numbering is a deterministic counter,
    /// so equal programs lower to byte-identical modules.
    pub fn lower(&self) -> Module {
        let mut l = Lowering {
            asm: Asm::new(),
            label: 0,
            depth: 0,
        };
        l.asm.func("main");
        l.asm.movi(Reg::R0, 0);
        l.asm.movi(Reg::R1, 7);
        // Scratch RAM window well below the stack (which starts at the
        // top of RAM and grows down).
        l.asm.mov32(Reg::R7, RAM_BASE + 0x100);
        for s in &self.stmts {
            l.stmt(s);
        }
        l.asm.halt();

        l.asm.func("lib_double");
        l.asm.add(Reg::R0, Reg::R0, Reg::R0);
        l.asm.ret();

        l.asm.func("lib_mix");
        l.asm.push(&[Reg::R4, Reg::Lr]);
        l.asm.movi(Reg::R4, 3);
        l.asm.add(Reg::R0, Reg::R0, Reg::R4);
        l.asm.bl("lib_double");
        l.asm.pop(&[Reg::R4, Reg::Pc]);

        l.asm.func("lib_inc");
        l.asm.addi(Reg::R0, Reg::R0, 1);
        l.asm.ret();

        l.asm.into_module()
    }
}

fn gen_stmt(rng: &mut Rng, depth: u32) -> Stmt {
    // Leaves get likelier as the tree deepens; depth 0 forces a leaf.
    if depth == 0 || rng.range(0, 3) == 0 {
        return match rng.range(0, 6) {
            0 => Stmt::Add(rng.range(1, 20) as u8),
            1 => Stmt::Stir(rng.range(0, 255) as u8),
            2 => Stmt::Store(rng.range(0, 16) as u8),
            3 => Stmt::Call(gen_lib(rng)),
            _ => Stmt::CallIndirect(gen_lib(rng)),
        };
    }
    match rng.range(0, 3) {
        0 => Stmt::If {
            cmp: gen_cmp(rng),
            k: rng.range(0, 8) as u8,
            then_b: gen_block(rng, depth - 1),
            else_b: gen_block(rng, depth - 1),
        },
        1 => Stmt::Loop {
            n: rng.range(1, 6) as u8,
            hidden: rng.next_bool(),
            body: gen_block(rng, depth - 1),
        },
        _ => {
            let n = rng.range(1, 6) as u8;
            Stmt::LoopBreak {
                n,
                k: rng.range(0, u64::from(n) + 1) as u8,
                body: gen_block(rng, depth - 1),
            }
        }
    }
}

fn gen_block(rng: &mut Rng, depth: u32) -> Vec<Stmt> {
    let n = rng.range(1, 4) as usize;
    (0..n).map(|_| gen_stmt(rng, depth)).collect()
}

fn gen_lib(rng: &mut Rng) -> Lib {
    match rng.range(0, 3) {
        0 => Lib::Double,
        1 => Lib::Mix,
        _ => Lib::Inc,
    }
}

fn gen_cmp(rng: &mut Rng) -> Cmp {
    match rng.range(0, 4) {
        0 => Cmp::Eq,
        1 => Cmp::Ne,
        2 => Cmp::Lt,
        _ => Cmp::Ge,
    }
}

struct Lowering {
    asm: Asm,
    label: usize,
    depth: usize,
}

impl Lowering {
    fn fresh(&mut self, tag: &str) -> String {
        self.label += 1;
        format!("__f_{tag}_{}", self.label)
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Add(k) => {
                self.asm.addi(Reg::R0, Reg::R0, u16::from(*k));
            }
            Stmt::Stir(k) => {
                self.asm.movi(Reg::R5, 31);
                self.asm.mul(Reg::R1, Reg::R1, Reg::R5);
                self.asm.addi(Reg::R1, Reg::R1, u16::from(*k));
            }
            Stmt::Store(slot) => {
                let off = u16::from(*slot) * 4;
                self.asm.str_(Reg::R1, Reg::R7, off);
                self.asm.ldr(Reg::R5, Reg::R7, off);
                self.asm.add(Reg::R0, Reg::R0, Reg::R5);
            }
            Stmt::If {
                cmp,
                k,
                then_b,
                else_b,
            } => {
                let else_l = self.fresh("else");
                let join_l = self.fresh("join");
                self.asm.movi(Reg::R5, 7);
                self.asm.and(Reg::R5, Reg::R1, Reg::R5);
                self.asm.cmpi(Reg::R5, u16::from(*k));
                // Branch to the else arm when the condition does NOT
                // hold, i.e. on the inverse of `cmp`.
                let inverse = match cmp {
                    Cmp::Eq => Cond::Ne,
                    Cmp::Ne => Cond::Eq,
                    Cmp::Lt => Cond::Ge,
                    Cmp::Ge => Cond::Lt,
                };
                self.asm.bcond(inverse, else_l.as_str());
                for s in then_b {
                    self.stmt(s);
                }
                self.asm.b(join_l.as_str());
                self.asm.label(else_l);
                for s in else_b {
                    self.stmt(s);
                }
                self.asm.label(join_l);
            }
            Stmt::Loop { n, hidden, body } => {
                // Loop counters nest on R2..R4; deeper nesting
                // degrades to a single straight-line pass.
                if self.depth >= 3 {
                    for s in body {
                        self.stmt(s);
                    }
                    return;
                }
                let reg = [Reg::R2, Reg::R3, Reg::R4][self.depth];
                self.depth += 1;
                let head = self.fresh("loop");
                if *hidden {
                    // The move launders the constant: the linker sees
                    // a data-dependent trip count and must emit DWT
                    // loop logging for this back-edge.
                    self.asm.movi(Reg::R5, u16::from(*n));
                    self.asm.mov(reg, Reg::R5);
                } else {
                    self.asm.movi(reg, u16::from(*n));
                }
                self.asm.label(head.clone());
                for s in body {
                    self.stmt(s);
                }
                self.asm.subi(reg, reg, 1);
                self.asm.cmpi(reg, 0);
                self.asm.bne(head.as_str());
                self.depth -= 1;
            }
            Stmt::LoopBreak { n, k, body } => {
                if self.depth >= 3 {
                    for s in body {
                        self.stmt(s);
                    }
                    return;
                }
                let reg = [Reg::R2, Reg::R3, Reg::R4][self.depth];
                self.depth += 1;
                let head = self.fresh("loop");
                let exit = self.fresh("exit");
                self.asm.movi(reg, u16::from(*n));
                self.asm.label(head.clone());
                for s in body {
                    self.stmt(s);
                }
                // Forward exit once the counter reaches k; otherwise
                // count down and loop. Terminates either way because
                // the counter strictly decreases towards 0.
                self.asm.cmpi(reg, u16::from(*k));
                self.asm.beq(exit.as_str());
                self.asm.subi(reg, reg, 1);
                self.asm.cmpi(reg, 0);
                self.asm.bne(head.as_str());
                self.asm.label(exit);
                self.depth -= 1;
            }
            Stmt::Call(lib) => {
                self.asm.bl(lib.name());
            }
            Stmt::CallIndirect(lib) => {
                self.asm.call_indirect(Reg::R6, lib.name());
                // R6 now holds the callee's address, which is
                // layout-dependent (original vs transformed image);
                // clear it so the end-state comparison stays exact.
                self.asm.movi(Reg::R6, 0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Program::generate(&mut Rng::new(11));
        let b = Program::generate(&mut Rng::new(11));
        let ma = a.lower().assemble(0).expect("assembles");
        let mb = b.lower().assemble(0).expect("assembles");
        assert_eq!(ma.bytes(), mb.bytes());
    }

    #[test]
    fn generated_programs_assemble_and_terminate() {
        for seed in 0..32 {
            let p = Program::generate(&mut Rng::new(seed));
            let image = p.lower().assemble(0).expect("assembles");
            let mut m = mcu_sim::Machine::new(image);
            m.run(&mut mcu_sim::NullSecureWorld, 2_000_000)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(m.cpu.halted, "seed {seed} did not halt");
        }
    }
}
