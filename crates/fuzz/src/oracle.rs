//! The three differential oracles.
//!
//! Every generated program is pushed through the full RAP-Track
//! pipeline and checked against three independent notions of
//! correctness:
//!
//! 1. **Transform equivalence** — the `rap-link`-rewritten image must
//!    compute exactly what the original computes ([`ArchState`]:
//!    R0–R7, flags, halt, RAM digest), cost no fewer cycles than the
//!    original (instrumentation only adds work), and re-attest
//!    byte-identically (the whole prover side is deterministic).
//! 2. **Replay fidelity** — the verifier's reconstructed path must
//!    match the simulator's ground-truth transfer trace stub-for-stub,
//!    survive a warm-cache re-verification unchanged, and come back
//!    identical through the fleet (`verifier.fleet(..).run(..)`) path.
//! 3. **Stream safety** — structure-aware mutation of the wire stream
//!    (without the key) and of re-signed logs (worst-case adversary
//!    with the key) must always terminate in a typed verdict: no
//!    panic, no hang, no unbounded allocation.
//!
//! A fourth, deliberately inverted *sabotage* oracle corrupts one MTB
//! packet and asserts the verifier accepts it. The verifier rejects
//! it, so the oracle fails on every program with at least one MTB
//! packet — a guaranteed, reproducible failure used to exercise the
//! campaign's failure reporting and the minimizer end-to-end.

use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::gen::Program;
use crate::mutate::{mutate_bytes, mutate_dict_reports, mutate_reports};
use crate::rng::{mix, Rng};
use mcu_sim::{ArchState, Machine, RunOutcome};
use rap_link::{link, LinkOptions, LinkedProgram, SiteKind};
use rap_track::{
    decode_stream, device_key, encode_stream, BatchOptions, CfaEngine, Challenge, DictParams,
    EngineConfig, FleetJob, Key, PathEvent, Report, SubPathDict, Verifier, Violation, WireError,
};

/// Per-case oracle configuration, fully determined by the campaign
/// settings and the case seed (never by wall clock or iteration
/// timing).
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Prover watermark (None = single final report; Some = pause and
    /// ship partial reports, exercising the multi-report path).
    pub watermark: Option<usize>,
    /// Byte-level plus record-level mutation rounds for oracle 3.
    pub mutation_rounds: usize,
    /// Enable the inverted sabotage oracle.
    pub sabotage: bool,
}

/// Aggregate counters from one passing case.
#[derive(Debug, Clone, Default)]
pub struct CaseResult {
    /// Mutation verdict histogram, keyed `level:mutation:verdict`.
    pub verdicts: BTreeMap<String, u64>,
    /// MTB packets across all reports.
    pub mtb_packets: u64,
    /// DWT loop records across all reports.
    pub loop_records: u64,
    /// Reconstructed path events.
    pub path_events: u64,
    /// Reports in the attestation.
    pub reports: u64,
    /// Instructions retired by the attested run.
    pub attested_instrs: u64,
    /// Dictionary-hit records in the compressed (v2) attestation.
    pub dict_hits: u64,
}

/// A failed oracle: which one, and a human-readable reason.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// Oracle name (`transform_equivalence`, `replay_fidelity`,
    /// `stream_safety`, `sabotage`, or `pipeline` for infrastructure
    /// failures such as assembly errors).
    pub oracle: &'static str,
    /// What went wrong.
    pub detail: String,
}

impl CaseFailure {
    fn new(oracle: &'static str, detail: impl Into<String>) -> CaseFailure {
        CaseFailure {
            oracle,
            detail: detail.into(),
        }
    }
}

/// Everything built once per case and shared by the oracles.
struct Pipeline {
    linked: LinkedProgram,
    key: Key,
    chal: Challenge,
    config: EngineConfig,
    plain_state: ArchState,
    plain_outcome: RunOutcome,
    attested_state: ArchState,
    attested_outcome: RunOutcome,
    reports: Vec<Report>,
    transfers: Vec<(u32, u32)>,
    verifier: Verifier,
    /// The same execution attested through a dictionary mined from the
    /// plain run — the v2 stream the dict oracles mutate.
    dict_reports: Vec<Report>,
    /// Verifier with that dictionary loaded.
    verifier_dict: Verifier,
    /// Dictionary-hit records across all dict reports.
    dict_hits: u64,
}

const MAX_INSTRS: u64 = 4_000_000;

/// Mining parameters for the per-case dictionary: small generated
/// programs need low support and short sub-paths to produce hits at
/// all, and a small table keeps the device matcher cheap.
const DICT_PARAMS: DictParams = DictParams {
    top_k: 8,
    min_support: 2,
    max_len: 8,
};

fn build(program: &Program, case_seed: u64, cfg: &OracleConfig) -> Result<Pipeline, CaseFailure> {
    let module = program.lower();
    let plain_image = module
        .assemble(0)
        .map_err(|e| CaseFailure::new("pipeline", format!("plain assemble: {e}")))?;
    let mut plain = Machine::new(plain_image);
    let plain_outcome = plain
        .run(&mut mcu_sim::NullSecureWorld, MAX_INSTRS)
        .map_err(|e| CaseFailure::new("pipeline", format!("plain run: {e}")))?;
    let plain_state = plain.arch_state();

    let linked = link(&module, 0, LinkOptions::default())
        .map_err(|e| CaseFailure::new("pipeline", format!("link: {e}")))?;
    let key = device_key("fuzz");
    let engine = CfaEngine::new(key.clone());
    let mut machine = Machine::new(linked.image.clone());
    machine.enable_transfer_trace();
    let chal = Challenge::from_seed(case_seed);
    let config = EngineConfig {
        watermark: cfg.watermark,
        max_instrs: MAX_INSTRS,
    };
    let att = engine
        .attest(&mut machine, &linked.map, chal, config)
        .map_err(|e| CaseFailure::new("pipeline", format!("attest: {e}")))?;
    let attested_state = machine.arch_state();
    let transfers = machine
        .transfer_trace()
        .expect("transfer trace was enabled")
        .to_vec();
    let verifier = Verifier::builder()
        .key(key.clone())
        .image(linked.image.clone())
        .map(linked.map.clone())
        .build()
        .expect("key/image/map are all set");

    // Dictionary leg: mine sub-paths from the plain run, attest the
    // same execution again with the device matcher armed, and load the
    // dictionary into a second verifier.
    let h_mem = att
        .reports
        .first()
        .ok_or_else(|| CaseFailure::new("pipeline", "attestation produced no reports"))?
        .h_mem;
    let dict = SubPathDict::mine(&att.combined_log(), h_mem, "fuzz", DICT_PARAMS);
    let dict_engine = CfaEngine::new(key.clone()).with_dict(dict.entries().to_vec());
    let mut dict_machine = Machine::new(linked.image.clone());
    let dict_att = dict_engine
        .attest(&mut dict_machine, &linked.map, chal, config)
        .map_err(|e| CaseFailure::new("pipeline", format!("dict attest: {e}")))?;
    let dict_hits = dict_att
        .reports
        .iter()
        .map(|r| r.log.dict_hits.len() as u64)
        .sum();
    let verifier_dict = Verifier::builder()
        .key(key.clone())
        .image(linked.image.clone())
        .map(linked.map.clone())
        .dict(dict)
        .build()
        .expect("key/image/map are all set");

    Ok(Pipeline {
        linked,
        key,
        chal,
        config,
        plain_state,
        plain_outcome,
        attested_state,
        attested_outcome: att.outcome,
        reports: att.reports,
        transfers,
        verifier,
        dict_reports: dict_att.reports,
        verifier_dict,
        dict_hits,
    })
}

// -------------------------------------------------------------------
// Oracle 1: transform equivalence
// -------------------------------------------------------------------

fn transform_equivalence(p: &Pipeline) -> Result<(), CaseFailure> {
    const O: &str = "transform_equivalence";
    if p.plain_state != p.attested_state {
        return Err(CaseFailure::new(
            O,
            format!(
                "architectural end states diverge:\n  plain:       {:?}\n  transformed: {:?}",
                p.plain_state, p.attested_state
            ),
        ));
    }
    if p.attested_outcome.cycles < p.plain_outcome.cycles {
        return Err(CaseFailure::new(
            O,
            format!(
                "transformed run cost fewer cycles than the original ({} < {}) — \
                 instrumentation cannot remove work",
                p.attested_outcome.cycles, p.plain_outcome.cycles
            ),
        ));
    }
    // The prover side is fully deterministic: attesting the same image
    // under the same challenge must reproduce the evidence byte for
    // byte, with identical cost accounting.
    let engine = CfaEngine::new(p.key.clone());
    let mut machine = Machine::new(p.linked.image.clone());
    let att2 = engine
        .attest(&mut machine, &p.linked.map, p.chal, p.config)
        .map_err(|e| CaseFailure::new(O, format!("re-attest: {e}")))?;
    if encode_stream(&att2.reports) != encode_stream(&p.reports) {
        return Err(CaseFailure::new(
            O,
            "re-attestation produced a different wire stream",
        ));
    }
    if att2.outcome != p.attested_outcome {
        return Err(CaseFailure::new(
            O,
            format!(
                "re-attestation cost differs: {:?} vs {:?}",
                att2.outcome, p.attested_outcome
            ),
        ));
    }
    if machine.arch_state() != p.attested_state {
        return Err(CaseFailure::new(
            O,
            "re-attestation reached a different end state",
        ));
    }
    Ok(())
}

// -------------------------------------------------------------------
// Oracle 2: replay fidelity
// -------------------------------------------------------------------

fn replay_fidelity(p: &Pipeline) -> Result<Vec<PathEvent>, CaseFailure> {
    const O: &str = "replay_fidelity";
    let path = p
        .verifier
        .verify(p.chal, &p.reports)
        .map_err(|e| CaseFailure::new(O, format!("honest evidence rejected: {e}")))?;

    // Ground truth: dynamic executions of each MTBAR stub, from the
    // simulator's transfer trace.
    let mut stub_executions: HashMap<u32, usize> = HashMap::new();
    for (src, _) in &p.transfers {
        if p.linked.map.site_at_src(*src).is_some() {
            *stub_executions.entry(*src).or_default() += 1;
        }
    }

    // Reconstruction: map each replayed event's MTBDR-side site to the
    // stub it targets and count.
    let mut reconstructed: HashMap<u32, usize> = HashMap::new();
    for e in &path.events {
        let (site_addr, not_taken) = match e {
            PathEvent::IndirectCall { site, .. }
            | PathEvent::Return { site, .. }
            | PathEvent::CondTaken { site, .. }
            | PathEvent::LoopContinue { site }
            | PathEvent::IndirectJump { site, .. } => (Some(*site), false),
            // A fall-through either consumed a CondFallthrough stub
            // (site = the inserted B) or executed no stub at all.
            PathEvent::CondNotTaken { site } => (Some(*site), true),
            _ => (None, false),
        };
        let Some(mtbdr_addr) = site_addr else {
            continue;
        };
        let Some(instr) = p.linked.image.instr_at(mtbdr_addr) else {
            continue;
        };
        let Some(target) = instr.target().and_then(|t| t.abs()) else {
            continue;
        };
        if let Some(site) = p.linked.map.site_at_entry(target) {
            let is_ft_stub = matches!(site.kind, SiteKind::CondFallthrough { .. });
            if not_taken && !is_ft_stub {
                continue;
            }
            *reconstructed.entry(site.src).or_default() += 1;
        }
    }
    let mut all_srcs: Vec<u32> = stub_executions
        .keys()
        .chain(reconstructed.keys())
        .copied()
        .collect();
    all_srcs.sort_unstable();
    all_srcs.dedup();
    for src in all_srcs {
        let actual = stub_executions.get(&src).copied().unwrap_or(0);
        let claimed = reconstructed.get(&src).copied().unwrap_or(0);
        if actual != claimed {
            return Err(CaseFailure::new(
                O,
                format!(
                    "stub {:#x} ({:?}) executed {} times but replay reconstructed {}",
                    src,
                    p.linked.map.site_at_src(src).map(|s| s.kind),
                    actual,
                    claimed
                ),
            ));
        }
    }

    // Warm-cache determinism: a second verification (replay cache now
    // populated) must reconstruct the identical path.
    let warm = p
        .verifier
        .verify(p.chal, &p.reports)
        .map_err(|e| CaseFailure::new(O, format!("warm-cache re-verify rejected: {e}")))?;
    if warm.events != path.events || warm.steps != path.steps {
        return Err(CaseFailure::new(
            O,
            "warm-cache re-verify reconstructed a different path",
        ));
    }

    // Dictionary equivalence: the compressed v2 stream must replay to
    // the identical path through the dictionary-loaded verifier — and
    // again warm, once the macro cache is populated by the cold pass.
    for pass in ["cold", "warm"] {
        let via_dict = p
            .verifier_dict
            .verify(p.chal, &p.dict_reports)
            .map_err(|e| CaseFailure::new(O, format!("dict evidence rejected ({pass}): {e}")))?;
        if via_dict.events != path.events || via_dict.steps != path.steps {
            return Err(CaseFailure::new(
                O,
                format!("dictionary-bearing replay ({pass}) reconstructed a different path"),
            ));
        }
    }
    // A dictionary-less verifier must reject the same stream with the
    // dedicated typed verdict whenever it actually carries hits.
    if p.dict_hits > 0 {
        match p.verifier.verify(p.chal, &p.dict_reports) {
            Err(Violation::DictUnavailable) => {}
            Ok(_) => {
                return Err(CaseFailure::new(
                    O,
                    "dictionary-less verifier accepted a dictionary-bearing stream",
                ));
            }
            Err(v) => {
                return Err(CaseFailure::new(
                    O,
                    format!(
                        "dictionary-less verifier rejected with {} instead of DictUnavailable",
                        v.kind()
                    ),
                ));
            }
        }
    }

    // Fleet path: the parallel dispatcher with its shared replay cache
    // must agree with the direct call on every clone.
    let jobs: Vec<FleetJob> = (0..2)
        .map(|i| FleetJob {
            device: format!("fuzz-{i}"),
            chal: p.chal,
            reports: p.reports.clone(),
        })
        .collect();
    for outcome in p.verifier.fleet(BatchOptions::with_threads(2)).run(jobs) {
        match outcome.result {
            Ok(fleet_path) => {
                if fleet_path.events != path.events {
                    return Err(CaseFailure::new(
                        O,
                        format!(
                            "fleet path for {} differs from direct verification",
                            outcome.device
                        ),
                    ));
                }
            }
            Err(e) => {
                return Err(CaseFailure::new(
                    O,
                    format!("fleet rejected honest evidence for {}: {e}", outcome.device),
                ));
            }
        }
    }
    Ok(path.events)
}

// -------------------------------------------------------------------
// Oracle 3: stream safety
// -------------------------------------------------------------------

fn wire_error_name(e: &WireError) -> &'static str {
    match e {
        WireError::Truncated { .. } => "truncated",
        WireError::BadMagic { .. } => "bad_magic",
        WireError::BadVersion { .. } => "bad_version",
        WireError::BadCount { .. } => "bad_count",
        WireError::BadRecordKind { .. } => "bad_record_kind",
        // `WireError` is `#[non_exhaustive]` upstream.
        _ => "other",
    }
}

fn stream_safety(
    p: &Pipeline,
    rng: &mut Rng,
    rounds: usize,
    verdicts: &mut BTreeMap<String, u64>,
) -> Result<(), CaseFailure> {
    const O: &str = "stream_safety";
    let encoded = encode_stream(&p.reports);

    // Byte level: keyless on-path corruption of the wire image.
    for _ in 0..rounds {
        let (mutated, mname) = mutate_bytes(rng, &encoded);
        let verdict = catch_unwind(AssertUnwindSafe(|| match decode_stream(&mutated) {
            Err(e) => wire_error_name(&e).to_string(),
            Ok(reports) => match p.verifier.verify(p.chal, &reports) {
                Ok(_) => "accept".to_string(),
                Err(v) => v.kind().to_string(),
            },
        }))
        .map_err(|_| {
            CaseFailure::new(
                O,
                format!("panic while processing byte-level mutation `{mname}`"),
            )
        })?;
        *verdicts
            .entry(format!("byte:{mname}:{verdict}"))
            .or_default() += 1;
    }

    // Record level: the worst-case adversary re-signs mutated logs
    // with the device key; framing and MACs check out, so the verdict
    // comes from path replay itself.
    for _ in 0..rounds {
        let (forged, mname) = mutate_reports(rng, &p.key, p.chal, &p.reports);
        let verdict = catch_unwind(AssertUnwindSafe(|| {
            match p.verifier.verify(p.chal, &forged) {
                Ok(_) => "accept".to_string(),
                Err(v) => v.kind().to_string(),
            }
        }))
        .map_err(|_| {
            CaseFailure::new(
                O,
                format!("panic while verifying record-level mutation `{mname}`"),
            )
        })?;
        *verdicts
            .entry(format!("record:{mname}:{verdict}"))
            .or_default() += 1;
    }

    // Dictionary-bearing (v2) stream, same two adversary models. The
    // dictionary-loaded verifier is the target: resolution of forged
    // ids, shifted splice points and reordered hits must all end in a
    // typed verdict.
    let dict_encoded = encode_stream(&p.dict_reports);
    for _ in 0..rounds {
        let (mutated, mname) = mutate_bytes(rng, &dict_encoded);
        let verdict = catch_unwind(AssertUnwindSafe(|| match decode_stream(&mutated) {
            Err(e) => wire_error_name(&e).to_string(),
            Ok(reports) => match p.verifier_dict.verify(p.chal, &reports) {
                Ok(_) => "accept".to_string(),
                Err(v) => v.kind().to_string(),
            },
        }))
        .map_err(|_| {
            CaseFailure::new(
                O,
                format!("panic while processing dict byte-level mutation `{mname}`"),
            )
        })?;
        *verdicts
            .entry(format!("dictbyte:{mname}:{verdict}"))
            .or_default() += 1;
    }
    for _ in 0..rounds {
        let (forged, mname) = mutate_dict_reports(rng, &p.key, p.chal, &p.dict_reports);
        let verdict = catch_unwind(AssertUnwindSafe(|| {
            match p.verifier_dict.verify(p.chal, &forged) {
                Ok(_) => "accept".to_string(),
                Err(v) => v.kind().to_string(),
            }
        }))
        .map_err(|_| {
            CaseFailure::new(
                O,
                format!("panic while verifying dict record-level mutation `{mname}`"),
            )
        })?;
        *verdicts
            .entry(format!("dictrec:{mname}:{verdict}"))
            .or_default() += 1;
    }
    Ok(())
}

// -------------------------------------------------------------------
// Sabotage (inverted oracle)
// -------------------------------------------------------------------

fn sabotage(p: &Pipeline) -> Result<(), CaseFailure> {
    // Find a report with at least one MTB packet; corrupt its first
    // packet's destination to a fixed bogus (but decodable) address
    // and re-sign everything. Programs with no MTB packets at all are
    // vacuously "safe" and pass.
    let Some(which) = p.reports.iter().position(|r| !r.log.mtb.is_empty()) else {
        return Ok(());
    };
    let last = p.reports.len() - 1;
    let forged: Vec<Report> = p
        .reports
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut log = r.log.clone();
            if i == which {
                log.mtb[0].dest = 0xDEAD_BEE0;
            }
            Report::new(
                &p.key,
                p.chal,
                r.h_mem,
                log,
                i as u32,
                i == last,
                r.overflow,
            )
        })
        .collect();
    match p.verifier.verify(p.chal, &forged) {
        // The inverted assertion: "the corrupted stream is accepted".
        Ok(_) => Ok(()),
        Err(v) => Err(CaseFailure::new(
            "sabotage",
            format!(
                "injected MTB corruption was detected as expected ({})",
                v.kind()
            ),
        )),
    }
}

// -------------------------------------------------------------------
// Case driver
// -------------------------------------------------------------------

/// Runs every oracle on one program. Fully deterministic in
/// `(program, case_seed, cfg)`; mutation randomness is derived from
/// `case_seed` alone so the minimizer can re-evaluate candidates
/// under identical conditions.
pub fn run_case(
    program: &Program,
    case_seed: u64,
    cfg: &OracleConfig,
) -> Result<CaseResult, CaseFailure> {
    let p = build(program, case_seed, cfg)?;
    transform_equivalence(&p)?;
    let events = replay_fidelity(&p)?;
    let mut result = CaseResult {
        mtb_packets: p.reports.iter().map(|r| r.log.mtb.len() as u64).sum(),
        loop_records: p
            .reports
            .iter()
            .map(|r| r.log.loop_records.len() as u64)
            .sum(),
        path_events: events.len() as u64,
        reports: p.reports.len() as u64,
        attested_instrs: p.attested_outcome.instrs,
        dict_hits: p.dict_hits,
        ..CaseResult::default()
    };
    let mut mrng = Rng::new(mix(case_seed ^ 0x5AFE_57E4_A11E_D0C5));
    stream_safety(&p, &mut mrng, cfg.mutation_rounds, &mut result.verdicts)?;
    if cfg.sabotage {
        sabotage(&p)?;
    }
    Ok(result)
}
