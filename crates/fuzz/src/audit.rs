//! The audit-chain oracle: structure-aware mutation of hash-chained
//! verdict logs, under `catch_unwind`.
//!
//! Each case builds a fresh chain of seeded, sealed [`VerdictRecord`]s
//! with an *independent* writer (header and frames are re-implemented
//! here, byte for byte, so drift between writer and verifier cannot
//! hide). The contract fuzzed:
//!
//! 1. **No panic, ever** — [`ChainVerifier::scan`] yields a typed
//!    report for any byte sequence, including pure garbage.
//! 2. **Round trip** — a clean chain verifies with and without the
//!    seal key, surfaces every record byte-identically, and ends at
//!    the writer's head hash.
//! 3. **Bit flips are fatal** — flipping any single bit anywhere in
//!    the file breaks verification with a typed first break.
//! 4. **Truncation is typed** — a cut inside a frame is a
//!    `TruncatedTail`; a cut exactly between frames verifies as a
//!    shorter prefix whose head matches that prefix (the residual an
//!    external head anchor exists to close).
//! 5. **Splices need the key** — a re-signed splice that recomputes
//!    every chain hash fools the keyless check but dies as `BadSeal`
//!    under the operator's key.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rap_audit::{entry_hash, genesis_hash, ChainBreak, ChainVerifier, FILE_HEADER_LEN};
use rap_track::{verdict_seal_key, Challenge, VerdictDraft, VerdictRecord};

use crate::oracle::CaseFailure;
use crate::rng::Rng;

/// Counters from one passing audit case.
#[derive(Debug, Clone, Copy, Default)]
pub struct AuditCaseResult {
    /// Records chained.
    pub records: u64,
    /// Mutations applied (flips, cuts, splices, garbage scans).
    pub mutations: u64,
}

fn gen_record(rng: &mut Rng, seal_key: &[u8], seq: u64) -> VerdictRecord {
    let mut chal = [0u8; 32];
    let mut report_hash = [0u8; 32];
    for i in 0..32 {
        chal[i] = rng.next_u64() as u8;
        report_hash[i] = rng.next_u64() as u8;
    }
    let accepted = !rng.next_u64().is_multiple_of(3);
    let (kind, detail) = if accepted {
        (String::new(), String::new())
    } else {
        let kinds = ["return-mismatch", "wire", "challenge-reused", "bad-tag"];
        (
            kinds[rng.usize_below(kinds.len())].to_string(),
            format!("fuzz detail {:x}", rng.next_u64()),
        )
    };
    VerdictRecord::seal(
        seal_key,
        VerdictDraft {
            device: format!("fuzz-dev-{}", rng.next_u64() % 8),
            chal: Challenge(chal),
            report_hash,
            accepted,
            kind,
            detail,
            events: rng.next_u64() as u32 % 4096,
            steps: rng.next_u64() % (1 << 20),
            stats_digest: report_hash,
            dict_hits: rng.next_u64() as u32 % 64,
            cache_hits: rng.next_u64() % 1024,
            cache_misses: rng.next_u64() % 1024,
            seq,
        },
    )
}

/// Independent chain writer: header plus length-prefixed frames, each
/// carrying `sha256(prev ‖ record_bytes)`. Returns the file image, the
/// frame start offsets, and the final head.
fn build_chain(records: &[VerdictRecord]) -> (Vec<u8>, Vec<usize>, [u8; 32]) {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"RAPA");
    bytes.push(1);
    let mut offsets = Vec::with_capacity(records.len());
    let mut prev = genesis_hash();
    for record in records {
        offsets.push(bytes.len());
        let rb = record.encode();
        let hash = entry_hash(&prev, &rb);
        bytes.extend_from_slice(&(rb.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&rb);
        bytes.extend_from_slice(&hash);
        prev = hash;
    }
    (bytes, offsets, prev)
}

/// Runs one audit-chain case for `case_seed`. Deterministic: the same
/// seed generates the same records and the same mutation schedule.
pub fn run_audit_case(
    case_seed: u64,
    mutation_rounds: usize,
) -> Result<AuditCaseResult, CaseFailure> {
    let fail = |detail: String| CaseFailure {
        oracle: "audit",
        detail,
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut rng = Rng::new(case_seed ^ 0xA0D1_7C8A);
        let seal_key = verdict_seal_key(&case_seed.to_le_bytes());
        let count = 2 + rng.next_u64() as usize % 6;
        let records: Vec<VerdictRecord> = (0..count as u64)
            .map(|seq| gen_record(&mut rng, &seal_key, seq))
            .collect();
        let (bytes, offsets, head) = build_chain(&records);
        let mut result = AuditCaseResult {
            records: count as u64,
            mutations: 0,
        };

        // Contract 2: the clean chain round-trips under both verifiers.
        let keyed = ChainVerifier::with_seal_key(seal_key.clone());
        let (entries, report) = keyed.scan(&bytes);
        if let Some(b) = &report.first_break {
            return Err(format!("clean chain broke: {b}"));
        }
        if report.entries != count as u64 || report.head != head {
            return Err(format!(
                "clean chain: {} entries head-match={}, expected {count}",
                report.entries,
                report.head == head
            ));
        }
        for (entry, record) in entries.iter().zip(&records) {
            if entry.record != *record {
                return Err(format!("entry {} did not round-trip", entry.index));
            }
        }
        if !ChainVerifier::new().verify_bytes(&bytes).ok() {
            return Err("clean chain broke under the keyless verifier".to_string());
        }

        for _ in 0..mutation_rounds {
            // Contract 3: any single-bit flip is a typed break.
            let at = rng.usize_below(bytes.len());
            let mut flipped = bytes.clone();
            flipped[at] ^= 1 << (rng.next_u64() % 8);
            result.mutations += 1;
            let report = keyed.verify_bytes(&flipped);
            if report.ok() {
                return Err(format!("bit flip at byte {at} went undetected"));
            }

            // Contract 4: truncation is typed (or a clean, shorter
            // prefix when the cut lands exactly between frames).
            let cut = rng.usize_below(bytes.len());
            result.mutations += 1;
            let report = ChainVerifier::new().verify_bytes(&bytes[..cut]);
            let on_boundary = offsets.contains(&cut);
            match &report.first_break {
                None if cut < FILE_HEADER_LEN => {
                    return Err(format!("headerless {cut}-byte prefix verified"));
                }
                None if !on_boundary && cut != bytes.len() => {
                    return Err(format!("mid-frame cut at {cut} verified"));
                }
                None => {
                    let want = offsets.iter().filter(|&&o| o < cut).count() as u64;
                    if report.entries != want {
                        return Err(format!(
                            "boundary cut at {cut}: {} entries, expected {want}",
                            report.entries
                        ));
                    }
                }
                Some(ChainBreak::TruncatedTail { .. }) | Some(ChainBreak::BadHeader { .. }) => {}
                Some(other) => {
                    return Err(format!("cut at {cut} misdiagnosed as {other}"));
                }
            }
        }

        // Contract 5: a re-signed splice (attacker re-seals one record
        // and recomputes every downstream chain hash) passes the
        // structural check but fails under the seal key.
        if count >= 2 {
            let victim = rng.usize_below(count);
            let mut forged = records.clone();
            forged[victim] = VerdictRecord::seal(
                &verdict_seal_key(b"fuzz-attacker"),
                forged[victim].fields.clone(),
            );
            let (spliced, _, _) = build_chain(&forged);
            result.mutations += 1;
            if !ChainVerifier::new().verify_bytes(&spliced).ok() {
                return Err("re-signed splice failed the structural check".to_string());
            }
            match keyed.verify_bytes(&spliced).first_break {
                Some(ChainBreak::BadSeal { index, .. }) if index == victim as u64 => {}
                other => {
                    return Err(format!(
                        "splice of entry {victim} not caught as BadSeal: {other:?}"
                    ));
                }
            }
        }

        // Contract 1: pure garbage never panics and is always typed.
        let garbage: Vec<u8> = (0..rng.usize_below(256))
            .map(|_| rng.next_u64() as u8)
            .collect();
        result.mutations += 1;
        if keyed.verify_bytes(&garbage).ok() && !garbage.is_empty() {
            return Err(format!("{}-byte garbage verified", garbage.len()));
        }
        Ok(result)
    }));

    match outcome {
        Ok(Ok(result)) => Ok(result),
        Ok(Err(detail)) => Err(fail(detail)),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            Err(fail(format!("panicked: {msg}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_cases_pass_across_seeds() {
        for seed in 0..24u64 {
            let result = run_audit_case(seed, 6).unwrap_or_else(|f| {
                panic!("seed {seed}: [{}] {}", f.oracle, f.detail);
            });
            assert!(result.records >= 2);
            assert!(result.mutations > 0);
        }
    }

    #[test]
    fn audit_case_is_deterministic() {
        let a = run_audit_case(7, 6).unwrap();
        let b = run_audit_case(7, 6).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.mutations, b.mutations);
    }
}
