//! Structure-aware mutation of attestation evidence.
//!
//! Two adversary models, in increasing strength:
//!
//! * **Byte-level** ([`mutate_bytes`]): an on-path attacker corrupting
//!   the wire stream without the device key. The decoder and verifier
//!   must survive anything here; almost everything is rejected at the
//!   framing or MAC layer.
//! * **Record-level** ([`mutate_reports`]): the worst-case adversary
//!   who can re-sign arbitrary logs with the device key (e.g. an
//!   extracted key). The verifier must still terminate with a typed
//!   verdict — replay may reject or, for semantically neutral edits,
//!   accept — but never panic, hang, or allocate unboundedly.

use crate::rng::Rng;
use rap_track::{Challenge, Report};
use trace_units::{SubPathHit, TraceEntry};

/// Applies one random byte-level mutation, returning the mutated
/// stream and the mutation's name (for the campaign histogram).
pub fn mutate_bytes(rng: &mut Rng, bytes: &[u8]) -> (Vec<u8>, &'static str) {
    let mut out = bytes.to_vec();
    match rng.range(0, 5) {
        0 => {
            // Truncate to a random prefix (possibly empty).
            let keep = rng.usize_below(out.len() + 1);
            out.truncate(keep);
            (out, "truncate")
        }
        1 => {
            // Flip 1..8 random bits.
            for _ in 0..rng.range(1, 9) {
                if out.is_empty() {
                    break;
                }
                let i = rng.usize_below(out.len());
                out[i] ^= 1 << rng.range(0, 8);
            }
            (out, "bit_flip")
        }
        2 => {
            // Splice: overwrite a window with a copy from elsewhere in
            // the same stream (keeps plausible framing bytes around).
            if out.len() >= 2 {
                let len = rng.range(1, 1 + (out.len() as u64 / 2).max(1)) as usize;
                let src = rng.usize_below(out.len() - len + 1);
                let dst = rng.usize_below(out.len() - len + 1);
                let window: Vec<u8> = out[src..src + len].to_vec();
                out[dst..dst + len].copy_from_slice(&window);
            }
            (out, "splice")
        }
        3 => {
            // Duplicate a chunk, growing the stream.
            if !out.is_empty() {
                let len = rng.range(1, 1 + out.len().min(64) as u64) as usize;
                let src = rng.usize_below(out.len() - len + 1);
                let at = rng.usize_below(out.len() + 1);
                let chunk: Vec<u8> = out[src..src + len].to_vec();
                out.splice(at..at, chunk);
            }
            (out, "duplicate")
        }
        _ => {
            // Insert random garbage at a random point.
            let len = rng.range(1, 33) as usize;
            let at = rng.usize_below(out.len() + 1);
            let garbage = rng.bytes(len);
            out.splice(at..at, garbage);
            (out, "garbage")
        }
    }
}

/// Applies one random record-level mutation to a report stream and
/// re-signs every report with the device key, returning the forged
/// stream and the mutation's name.
pub fn mutate_reports(
    rng: &mut Rng,
    key: &[u8],
    chal: Challenge,
    reports: &[Report],
) -> (Vec<Report>, &'static str) {
    let mut logs: Vec<_> = reports.iter().map(|r| r.log.clone()).collect();
    let h_mem = reports[0].h_mem;
    let which = rng.usize_below(logs.len());
    let name = match rng.range(0, 7) {
        0 => {
            // Corrupt an MTB packet's destination (classic CFA attack
            // shape: claim a different transfer than executed).
            if let Some(i) = pick(rng, logs[which].mtb.len()) {
                logs[which].mtb[i].dest = rng.next_u32() & !1;
            }
            "mtb_dest"
        }
        1 => {
            // Corrupt an MTB packet's source.
            if let Some(i) = pick(rng, logs[which].mtb.len()) {
                logs[which].mtb[i].source = rng.next_u32() & !1;
            }
            "mtb_source"
        }
        2 => {
            // Reorder: swap two MTB packets (replayed path diverges).
            let n = logs[which].mtb.len();
            if n >= 2 {
                let i = rng.usize_below(n);
                let j = rng.usize_below(n);
                logs[which].mtb.swap(i, j);
            }
            "mtb_swap"
        }
        3 => {
            // Duplicate an MTB packet in place.
            if let Some(i) = pick(rng, logs[which].mtb.len()) {
                let e = logs[which].mtb[i];
                logs[which].mtb.insert(i, TraceEntry::new(e.source, e.dest));
            }
            "mtb_dup"
        }
        4 => {
            // Drop an MTB packet.
            if let Some(i) = pick(rng, logs[which].mtb.len()) {
                logs[which].mtb.remove(i);
            }
            "mtb_drop"
        }
        5 => {
            // Tamper with the DWT loop-count records.
            if logs[which].loop_records.is_empty() || rng.next_bool() {
                logs[which].loop_records.push(rng.next_u32());
            } else {
                logs[which].loop_records.clear();
            }
            "loop_records"
        }
        _ => "flags",
    };
    let flip_flags = name == "flags";
    let last = logs.len() - 1;
    let forged = logs
        .into_iter()
        .enumerate()
        .map(|(i, log)| {
            let mut is_final = i == last;
            let mut overflow = reports[i].overflow;
            if flip_flags && i == which {
                // Flip the framing flags (lost finality / fake
                // overflow claims).
                is_final = !is_final;
                overflow = !overflow;
            }
            Report::new(key, chal, h_mem, log, i as u32, is_final, overflow)
        })
        .collect();
    (forged, name)
}

/// Applies one random mutation targeting the dictionary-hit records of
/// a v2 stream and re-signs every report, returning the forged stream
/// and the mutation's name. The adversary model is the same worst case
/// as [`mutate_reports`]: key in hand, framing and MACs valid, so the
/// verdict must come from dictionary resolution or path replay.
pub fn mutate_dict_reports(
    rng: &mut Rng,
    key: &[u8],
    chal: Challenge,
    reports: &[Report],
) -> (Vec<Report>, &'static str) {
    let mut logs: Vec<_> = reports.iter().map(|r| r.log.clone()).collect();
    let h_mem = reports[0].h_mem;
    let which = rng.usize_below(logs.len());
    let name = match rng.range(0, 6) {
        0 => {
            // Forge the dictionary id: claim a (likely unknown or
            // wrong) entry was matched.
            if let Some(i) = pick(rng, logs[which].dict_hits.len()) {
                logs[which].dict_hits[i].id = logs[which].dict_hits[i]
                    .id
                    .wrapping_add(rng.range(1, 1 + u64::from(u32::MAX)) as u32);
            }
            "dict_id"
        }
        1 => {
            // Shift a hit's splice position within the residual MTB
            // stream (expansion lands at the wrong place).
            if let Some(i) = pick(rng, logs[which].dict_hits.len()) {
                logs[which].dict_hits[i].at = rng.next_u32() % 1024;
            }
            "dict_at"
        }
        2 => {
            // Drop a hit: the compressed transfers silently vanish.
            if let Some(i) = pick(rng, logs[which].dict_hits.len()) {
                logs[which].dict_hits.remove(i);
            }
            "dict_drop"
        }
        3 => {
            // Duplicate a hit: the sub-path is replayed twice.
            if let Some(i) = pick(rng, logs[which].dict_hits.len()) {
                let h = logs[which].dict_hits[i];
                logs[which].dict_hits.insert(i, h);
            }
            "dict_dup"
        }
        4 => {
            // Inject a fresh hit at a random position.
            let at = rng.next_u32() % 1024;
            let id = rng.next_u32() % 64;
            let n = logs[which].dict_hits.len();
            let i = rng.usize_below(n + 1);
            logs[which].dict_hits.insert(i, SubPathHit { at, id });
            "dict_inject"
        }
        _ => {
            // Swap two hits (ordering violation: `at` must be
            // non-decreasing for the splice walk).
            let n = logs[which].dict_hits.len();
            if n >= 2 {
                let i = rng.usize_below(n);
                let j = rng.usize_below(n);
                logs[which].dict_hits.swap(i, j);
            }
            "dict_swap"
        }
    };
    let last = logs.len() - 1;
    let forged = logs
        .into_iter()
        .enumerate()
        .map(|(i, log)| {
            Report::new(
                key,
                chal,
                h_mem,
                log,
                i as u32,
                i == last,
                reports[i].overflow,
            )
        })
        .collect();
    (forged, name)
}

fn pick(rng: &mut Rng, len: usize) -> Option<usize> {
    if len == 0 {
        None
    } else {
        Some(rng.usize_below(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_mutation_is_deterministic() {
        let base: Vec<u8> = (0..200u8).collect();
        let (a, na) = mutate_bytes(&mut Rng::new(5), &base);
        let (b, nb) = mutate_bytes(&mut Rng::new(5), &base);
        assert_eq!(a, b);
        assert_eq!(na, nb);
    }

    #[test]
    fn byte_mutation_handles_empty_input() {
        for seed in 0..32 {
            let (_, _) = mutate_bytes(&mut Rng::new(seed), &[]);
        }
    }
}
