//! # rap-fuzz — deterministic differential fuzzing of the RAP-Track pipeline
//!
//! A zero-dependency fuzzing harness for the transform/trace/verify
//! pipeline (DESIGN.md §11). A SplitMix64-seeded generator produces
//! structured random programs spanning every control-transfer class
//! the linker instruments; each program is pushed through three
//! differential oracles:
//!
//! 1. [transform equivalence](oracle) — rewriting preserves semantics
//!    and cost accounting, and re-attests byte-identically,
//! 2. replay fidelity — the verifier reconstructs the exact path the
//!    simulator executed, cold cache, warm cache and through the
//!    fleet dispatcher alike,
//! 3. stream safety — structure-aware mutation of wire streams and
//!    re-signed logs always ends in a typed verdict.
//!
//! Two further program-free oracles run in every case: the fleet
//! control plane's [registry state machine](registry) (random verdict
//! / timeout / admin-command sequences under `catch_unwind`, asserting
//! every sequence ends in a typed state and quarantine is reachable
//! only through a REJECTED verdict or an admin command), and the
//! [audit chain](audit) (bit flips, truncations, and re-signed splices
//! against hash-chained verdict logs, asserting every mutation is a
//! typed first break and bare truncation never masquerades as tamper).
//!
//! **Determinism is the contract.** A campaign is a pure function of
//! its `(seed, iters, options)`; summaries contain no wall-clock data,
//! so two runs with the same arguments are byte-identical. Every case
//! derives its own seed, printed on failure and replayable in
//! isolation:
//!
//! ```text
//! rap fuzz --replay 0x1234abcd
//! ```
//!
//! Failing programs are shrunk by a greedy structural
//! [minimizer](minimize) before being reported.
//!
//! ```
//! let summary = rap_fuzz::run(&rap_fuzz::FuzzConfig {
//!     iters: 3,
//!     ..rap_fuzz::FuzzConfig::default()
//! });
//! assert!(summary.ok());
//! assert_eq!(summary.cases_run, 3);
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod gen;
pub mod minimize;
pub mod mutate;
pub mod oracle;
pub mod registry;
pub mod rng;

use std::collections::BTreeMap;
use std::fmt::Write as _;

use gen::Program;
use oracle::{CaseFailure, OracleConfig};
use rap_obs::Json;
use rng::{case_seed, Rng};

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Campaign seed; every case seed derives from it.
    pub seed: u64,
    /// Number of generated programs.
    pub iters: u64,
    /// Mutation rounds per level (byte / record) per case.
    pub mutation_rounds: usize,
    /// Enable the deliberately inverted sabotage oracle (corrupts one
    /// MTB packet, asserts acceptance): a guaranteed failure used to
    /// demonstrate reporting and minimization.
    pub sabotage: bool,
    /// Replay exactly one case from its printed case seed instead of
    /// running a campaign.
    pub replay: Option<u64>,
    /// Stop the campaign after this many failures.
    pub max_failures: usize,
    /// Predicate-evaluation budget per minimization.
    pub minimize_budget: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 1,
            iters: 100,
            mutation_rounds: 12,
            sabotage: false,
            replay: None,
            max_failures: 5,
            minimize_budget: 120,
        }
    }
}

/// One oracle failure, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct FailureRecord {
    /// Campaign iteration index (`None` when replaying a single case).
    pub index: Option<u64>,
    /// The case seed — feed to `--replay` to reproduce in isolation.
    pub case_seed: u64,
    /// Which oracle failed.
    pub oracle: String,
    /// Why it failed.
    pub detail: String,
    /// Statement count of the original failing program.
    pub stmt_count: usize,
    /// Statement count after minimization.
    pub minimized_stmt_count: usize,
    /// Predicate evaluations the minimizer spent.
    pub minimize_evals: usize,
    /// Copy-paste reproduction command.
    pub repro: String,
}

/// Aggregate counters across all passing cases.
#[derive(Debug, Clone, Copy, Default)]
pub struct Totals {
    /// Statements generated (pre-minimization).
    pub stmts: u64,
    /// Attestation reports produced.
    pub reports: u64,
    /// MTB packets logged.
    pub mtb_packets: u64,
    /// DWT loop records logged.
    pub loop_records: u64,
    /// Path events reconstructed by the verifier.
    pub path_events: u64,
    /// Instructions retired by attested runs.
    pub attested_instrs: u64,
    /// Dictionary-hit records across compressed (v2) attestations.
    pub dict_hits: u64,
    /// Events fed through the fleet-registry oracle.
    pub registry_events: u64,
    /// State transitions the fleet-registry oracle observed.
    pub registry_transitions: u64,
    /// Sealed records chained by the audit oracle.
    pub audit_records: u64,
    /// Log mutations (flips, cuts, splices, garbage) the audit oracle
    /// verified were caught.
    pub audit_mutations: u64,
}

/// The campaign result. Contains no wall-clock data by design: equal
/// configurations render and serialize byte-identically.
#[derive(Debug, Clone)]
pub struct FuzzSummary {
    /// Echo of the campaign seed.
    pub seed: u64,
    /// Echo of the requested iteration count.
    pub iters: u64,
    /// Whether the sabotage oracle was armed.
    pub sabotage: bool,
    /// Cases actually executed (≤ `iters` if failures stopped the run).
    pub cases_run: u64,
    /// All recorded failures, minimized.
    pub failures: Vec<FailureRecord>,
    /// Mutation verdict histogram, keyed `level:mutation:verdict`.
    pub verdicts: BTreeMap<String, u64>,
    /// Aggregate counters.
    pub totals: Totals,
}

impl FuzzSummary {
    /// Whether the campaign should be considered a success. Under
    /// sabotage the semantics invert: the injected fault *must* be
    /// caught, so at least one sabotage failure is the passing state.
    pub fn ok(&self) -> bool {
        if self.sabotage {
            self.failures.iter().any(|f| f.oracle == "sabotage")
                && self.failures.iter().all(|f| f.oracle == "sabotage")
        } else {
            self.failures.is_empty()
        }
    }

    /// Renders the deterministic human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "rap-fuzz campaign: seed={} iters={} sabotage={}",
            self.seed,
            self.iters,
            if self.sabotage { "on" } else { "off" }
        );
        let _ = writeln!(
            out,
            "cases: {} run, {} failed",
            self.cases_run,
            self.failures.len()
        );
        let t = &self.totals;
        let _ = writeln!(
            out,
            "totals: stmts={} reports={} mtb-packets={} loop-records={} path-events={} attested-instrs={} dict-hits={}",
            t.stmts, t.reports, t.mtb_packets, t.loop_records, t.path_events, t.attested_instrs, t.dict_hits
        );
        let _ = writeln!(
            out,
            "registry oracle: events={} transitions={}",
            t.registry_events, t.registry_transitions
        );
        let _ = writeln!(
            out,
            "audit oracle: records={} mutations={}",
            t.audit_records, t.audit_mutations
        );
        if !self.verdicts.is_empty() {
            let _ = writeln!(out, "mutation verdicts:");
            for (key, count) in &self.verdicts {
                let _ = writeln!(out, "  {key:<44} {count}");
            }
        }
        for f in &self.failures {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "FAIL [{}] case_seed={:#x}{}",
                f.oracle,
                f.case_seed,
                match f.index {
                    Some(i) => format!(" (iteration {i})"),
                    None => String::new(),
                }
            );
            for line in f.detail.lines() {
                let _ = writeln!(out, "  {line}");
            }
            let _ = writeln!(
                out,
                "  minimized: {} -> {} stmts ({} evals)",
                f.stmt_count, f.minimized_stmt_count, f.minimize_evals
            );
            let _ = writeln!(out, "  repro: {}", f.repro);
        }
        let _ = writeln!(
            out,
            "verdict: {}",
            if self.ok() {
                if self.sabotage {
                    "OK (injected fault detected)"
                } else {
                    "OK"
                }
            } else {
                "FAILURES FOUND"
            }
        );
        out
    }

    /// Serializes the summary as a JSON document (the CI artifact).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::Uint(self.seed)),
            ("iters", Json::Uint(self.iters)),
            ("sabotage", Json::Bool(self.sabotage)),
            ("cases_run", Json::Uint(self.cases_run)),
            ("ok", Json::Bool(self.ok())),
            (
                "totals",
                Json::obj([
                    ("stmts", Json::Uint(self.totals.stmts)),
                    ("reports", Json::Uint(self.totals.reports)),
                    ("mtb_packets", Json::Uint(self.totals.mtb_packets)),
                    ("loop_records", Json::Uint(self.totals.loop_records)),
                    ("path_events", Json::Uint(self.totals.path_events)),
                    ("attested_instrs", Json::Uint(self.totals.attested_instrs)),
                    ("dict_hits", Json::Uint(self.totals.dict_hits)),
                    ("registry_events", Json::Uint(self.totals.registry_events)),
                    (
                        "registry_transitions",
                        Json::Uint(self.totals.registry_transitions),
                    ),
                    ("audit_records", Json::Uint(self.totals.audit_records)),
                    ("audit_mutations", Json::Uint(self.totals.audit_mutations)),
                ]),
            ),
            (
                "verdicts",
                Json::Obj(
                    self.verdicts
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Uint(*v)))
                        .collect(),
                ),
            ),
            (
                "failures",
                Json::Arr(
                    self.failures
                        .iter()
                        .map(|f| {
                            Json::obj([
                                (
                                    "index",
                                    match f.index {
                                        Some(i) => Json::Uint(i),
                                        None => Json::Null,
                                    },
                                ),
                                ("case_seed", Json::Uint(f.case_seed)),
                                ("oracle", Json::Str(f.oracle.clone())),
                                ("detail", Json::Str(f.detail.clone())),
                                ("stmt_count", Json::Uint(f.stmt_count as u64)),
                                (
                                    "minimized_stmt_count",
                                    Json::Uint(f.minimized_stmt_count as u64),
                                ),
                                ("minimize_evals", Json::Uint(f.minimize_evals as u64)),
                                ("repro", Json::Str(f.repro.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Generates the program and oracle configuration for one case seed.
/// Shared by the campaign loop and `--replay` so a replayed case sees
/// exactly what the campaign saw.
fn case_setup(cs: u64, cfg: &FuzzConfig) -> (Program, OracleConfig) {
    let mut rng = Rng::new(cs);
    // Always attest with a watermark — the default MTB holds 512
    // entries and a generated program's packet count is unbounded, so
    // running undrained would make honest evidence overflow (which the
    // verifier rightly rejects). Varying the watermark exercises
    // everything from aggressive partial-report splicing (16) to the
    // single-final-report path (448, rarely reached by small cases).
    let watermark = Some([16usize, 64, 448][rng.usize_below(3)]);
    let program = Program::generate(&mut rng);
    (
        program,
        OracleConfig {
            watermark,
            mutation_rounds: cfg.mutation_rounds,
            sabotage: cfg.sabotage,
        },
    )
}

fn record_failure(
    cfg: &FuzzConfig,
    index: Option<u64>,
    cs: u64,
    program: &Program,
    ocfg: &OracleConfig,
    failure: CaseFailure,
) -> FailureRecord {
    // Shrink while the same oracle keeps failing.
    let minimized = minimize::minimize(
        program,
        cfg.minimize_budget,
        |candidate| matches!(oracle::run_case(candidate, cs, ocfg), Err(f) if f.oracle == failure.oracle),
    );
    let mut repro = format!("rap fuzz --replay {cs:#x}");
    if cfg.sabotage {
        repro.push_str(" --sabotage");
    }
    FailureRecord {
        index,
        case_seed: cs,
        oracle: failure.oracle.to_string(),
        detail: failure.detail,
        stmt_count: program.stmt_count(),
        minimized_stmt_count: minimized.program.stmt_count(),
        minimize_evals: minimized.evals,
        repro,
    }
}

/// Runs a campaign (or a single `--replay` case) to completion.
pub fn run(cfg: &FuzzConfig) -> FuzzSummary {
    let mut summary = FuzzSummary {
        seed: cfg.seed,
        iters: cfg.iters,
        sabotage: cfg.sabotage,
        cases_run: 0,
        failures: Vec::new(),
        verdicts: BTreeMap::new(),
        totals: Totals::default(),
    };

    let cases: Vec<(Option<u64>, u64)> = match cfg.replay {
        Some(cs) => vec![(None, cs)],
        None => (0..cfg.iters)
            .map(|i| (Some(i), case_seed(cfg.seed, i)))
            .collect(),
    };

    for (index, cs) in cases {
        if summary.failures.len() >= cfg.max_failures {
            break;
        }
        let (program, ocfg) = case_setup(cs, cfg);
        summary.cases_run += 1;
        summary.totals.stmts += program.stmt_count() as u64;
        // The registry and audit oracles are program-free (their whole
        // case derives from the case seed), so a failure skips program
        // minimization — the seed alone reproduces it.
        let mut program_free_failed = false;
        let record_program_free = |failure: CaseFailure, summary: &mut FuzzSummary| {
            let mut repro = format!("rap fuzz --replay {cs:#x}");
            if cfg.sabotage {
                repro.push_str(" --sabotage");
            }
            summary.failures.push(FailureRecord {
                index,
                case_seed: cs,
                oracle: failure.oracle.to_string(),
                detail: failure.detail,
                stmt_count: 0,
                minimized_stmt_count: 0,
                minimize_evals: 0,
                repro,
            });
        };
        match registry::run_registry_case(cs) {
            Ok(result) => {
                summary.totals.registry_events += result.events;
                summary.totals.registry_transitions += result.transitions;
            }
            Err(failure) => {
                record_program_free(failure, &mut summary);
                program_free_failed = true;
            }
        }
        match audit::run_audit_case(cs, cfg.mutation_rounds) {
            Ok(result) => {
                summary.totals.audit_records += result.records;
                summary.totals.audit_mutations += result.mutations;
            }
            Err(failure) => {
                record_program_free(failure, &mut summary);
                program_free_failed = true;
            }
        }
        if program_free_failed {
            continue;
        }
        match oracle::run_case(&program, cs, &ocfg) {
            Ok(result) => {
                summary.totals.reports += result.reports;
                summary.totals.mtb_packets += result.mtb_packets;
                summary.totals.loop_records += result.loop_records;
                summary.totals.path_events += result.path_events;
                summary.totals.attested_instrs += result.attested_instrs;
                summary.totals.dict_hits += result.dict_hits;
                for (key, count) in result.verdicts {
                    *summary.verdicts.entry(key).or_default() += count;
                }
            }
            Err(failure) => {
                summary
                    .failures
                    .push(record_failure(cfg, index, cs, &program, &ocfg, failure));
            }
        }
    }
    summary
}
