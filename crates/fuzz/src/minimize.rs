//! Greedy structural minimization of failing programs.
//!
//! Works on the statement tree, not on bytes: candidate reductions
//! are (a) deleting any single statement anywhere in the tree and
//! (b) hoisting a compound statement's body in place of the compound
//! (unwrapping an `if`/loop). A reduction is kept iff the failure
//! predicate still fires, so the result fails for the same reason the
//! original did. Predicate evaluations are bounded — minimization is
//! best-effort, never the expensive part of a campaign.

use crate::gen::{Program, Stmt};

/// Where a reduction applies: descend `steps` (statement index, child
/// slot) from the top level, then act on `index` in that block.
#[derive(Debug, Clone)]
struct Loc {
    steps: Vec<(usize, usize)>,
    index: usize,
}

fn child_blocks(s: &Stmt) -> Vec<&Vec<Stmt>> {
    match s {
        Stmt::If { then_b, else_b, .. } => vec![then_b, else_b],
        Stmt::Loop { body, .. } | Stmt::LoopBreak { body, .. } => vec![body],
        _ => vec![],
    }
}

fn child_block_mut(s: &mut Stmt, slot: usize) -> Option<&mut Vec<Stmt>> {
    match s {
        Stmt::If { then_b, else_b, .. } => match slot {
            0 => Some(then_b),
            1 => Some(else_b),
            _ => None,
        },
        Stmt::Loop { body, .. } | Stmt::LoopBreak { body, .. } if slot == 0 => Some(body),
        _ => None,
    }
}

fn collect(stmts: &[Stmt], steps: &mut Vec<(usize, usize)>, out: &mut Vec<Loc>) {
    for (i, s) in stmts.iter().enumerate() {
        out.push(Loc {
            steps: steps.clone(),
            index: i,
        });
        for (slot, block) in child_blocks(s).into_iter().enumerate() {
            steps.push((i, slot));
            collect(block, steps, out);
            steps.pop();
        }
    }
}

fn block_at_mut<'a>(
    program: &'a mut Program,
    steps: &[(usize, usize)],
) -> Option<&'a mut Vec<Stmt>> {
    let mut cur = &mut program.stmts;
    for (i, slot) in steps {
        cur = child_block_mut(cur.get_mut(*i)?, *slot)?;
    }
    Some(cur)
}

/// Deletes the statement at `loc`.
fn delete(program: &Program, loc: &Loc) -> Option<Program> {
    let mut p = program.clone();
    let block = block_at_mut(&mut p, &loc.steps)?;
    if loc.index >= block.len() {
        return None;
    }
    block.remove(loc.index);
    Some(p)
}

/// Replaces the compound statement at `loc` with its own body
/// (then+else for an `if`), stripping one level of control structure.
fn hoist(program: &Program, loc: &Loc) -> Option<Program> {
    let mut p = program.clone();
    let block = block_at_mut(&mut p, &loc.steps)?;
    let body = match block.get(loc.index)? {
        Stmt::If { then_b, else_b, .. } => {
            let mut b = then_b.clone();
            b.extend(else_b.iter().cloned());
            b
        }
        Stmt::Loop { body, .. } | Stmt::LoopBreak { body, .. } => body.clone(),
        _ => return None,
    };
    block.splice(loc.index..=loc.index, body);
    Some(p)
}

/// The minimization outcome: the smallest failing program found and
/// how many predicate evaluations it took.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The reduced program (still failing).
    pub program: Program,
    /// Predicate evaluations spent.
    pub evals: usize,
}

/// Greedily shrinks `program`, keeping any reduction for which
/// `still_fails` returns true, until a fixed point or `budget`
/// predicate evaluations.
pub fn minimize(
    program: &Program,
    budget: usize,
    mut still_fails: impl FnMut(&Program) -> bool,
) -> Minimized {
    let mut current = program.clone();
    let mut evals = 0usize;
    loop {
        let mut locs = Vec::new();
        collect(&current.stmts, &mut Vec::new(), &mut locs);
        // Try larger indices first so sibling locations stay valid
        // across the re-enumeration boundary less often (pure
        // heuristic; correctness comes from re-enumerating).
        locs.reverse();
        let mut reduced = false;
        'pass: for loc in &locs {
            for candidate in [delete(&current, loc), hoist(&current, loc)] {
                let Some(candidate) = candidate else { continue };
                if evals >= budget {
                    return Minimized {
                        program: current,
                        evals,
                    };
                }
                evals += 1;
                if still_fails(&candidate) {
                    current = candidate;
                    reduced = true;
                    break 'pass;
                }
            }
        }
        if !reduced {
            return Minimized {
                program: current,
                evals,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn minimizes_to_the_single_guilty_statement() {
        // Failure predicate: "contains at least one Call(Mix)".
        let mut rng = Rng::new(99);
        let mut program = Program::generate(&mut rng);
        program.stmts.push(Stmt::Call(crate::gen::Lib::Mix));
        fn guilty(s: &Stmt) -> bool {
            match s {
                Stmt::Call(crate::gen::Lib::Mix) => true,
                Stmt::If { then_b, else_b, .. } => {
                    then_b.iter().any(guilty) || else_b.iter().any(guilty)
                }
                Stmt::Loop { body, .. } | Stmt::LoopBreak { body, .. } => body.iter().any(guilty),
                _ => false,
            }
        }
        let m = minimize(&program, 10_000, |p| p.stmts.iter().any(guilty));
        assert_eq!(m.program.stmt_count(), 1, "{:?}", m.program);
        assert!(m.program.stmts.iter().any(guilty));
    }

    #[test]
    fn respects_the_eval_budget() {
        let mut rng = Rng::new(7);
        let program = Program::generate(&mut rng);
        let mut calls = 0usize;
        let m = minimize(&program, 3, |_| {
            calls += 1;
            false
        });
        assert!(m.evals <= 3);
        assert_eq!(calls, m.evals);
    }
}
