//! End-to-end fleet control plane scenarios (ISSUE 9): a deterministic
//! simulated fleet of SplitMix64-seeded device actors attesting over
//! loopback against a real rap-serve deployment with the fleet plane
//! attached, exercising the full compromise → detection → quarantine →
//! heal loop. Every scenario is a pure function of its [`SimConfig`] —
//! the transition logs are asserted byte-for-byte across runs.

use rap_fleet::{run_sim, Cause, DeviceState, Event, FleetPlane, Policy, Registry, SimConfig};

fn base_config() -> SimConfig {
    SimConfig {
        devices: 4,
        compromised: 0,
        flaky: 0,
        slots: 24,
        seed: 0xF1EE7,
        flip_at_slot: 4,
        restore_at_slot: 10,
        policy: SimConfig::demo_policy(),
        admin: false,
    }
}

#[test]
fn benign_steady_state_has_no_spurious_transitions() {
    let report = run_sim(&SimConfig {
        devices: 3,
        slots: 50,
        ..base_config()
    })
    .expect("sim runs");
    assert_eq!(
        report.transitions, "",
        "benign fleet must not transition:\n{}",
        report.transitions
    );
    assert_eq!(report.rejected, 0);
    assert_eq!(report.timeouts, 0);
    assert_eq!(report.rounds_driven, 150, "3 devices x 50 slots");
    assert!(report.states.values().all(|&s| s == DeviceState::Healthy));
}

#[test]
fn compromise_detection_quarantine_heal_is_deterministic() {
    let config = SimConfig {
        compromised: 1,
        ..base_config()
    };
    let report = run_sim(&config).expect("sim runs");

    // Detection within the policy threshold: the actor starts forging
    // at slot 4 (t=400ms) and quarantine_after=2, so the device must
    // be quarantined by its second forged round at t=500ms.
    let lines: Vec<&str> = report.transitions.lines().collect();
    // Verdict-triggered transitions cite the sealed record (short
    // hash) that caused them — the join key into the audit log.
    let evidenced = |prefix: &str| {
        lines
            .iter()
            .any(|l| l.starts_with(prefix) && l.contains(" rec="))
    };
    assert!(
        evidenced("t=400ms dev-000 healthy -> suspect (reject-streak)"),
        "first forged round raises suspicion, citing its record:\n{}",
        report.transitions
    );
    assert!(
        evidenced("t=500ms dev-000 suspect -> quarantined (reject-threshold)"),
        "second forged round quarantines, citing its record:\n{}",
        report.transitions
    );
    // Remediation: the quarantine TTL offers re-provisioning, and once
    // the actor is restored (slot 10) an accepted round past the
    // backoff gate returns it to Healthy.
    assert!(
        report
            .transitions
            .contains("quarantined -> reprovisioning (quarantine-ttl)"),
        "TTL must expire into reprovisioning:\n{}",
        report.transitions
    );
    assert!(
        report
            .transitions
            .contains("reprovisioning -> healthy (reprovisioned)"),
        "restored device must heal:\n{}",
        report.transitions
    );
    assert_eq!(report.states["dev-000"], DeviceState::Healthy);
    // The other three devices never transition.
    for line in &lines {
        assert!(
            line.contains("dev-000"),
            "only the compromised device transitions, got: {line}"
        );
    }

    // Byte-for-byte determinism: a second run from the same config
    // replays the identical audit log and registry.
    let again = run_sim(&config).expect("sim runs twice");
    assert_eq!(report.transitions, again.transitions);
    assert_eq!(
        report.registry_json.to_compact(),
        again.registry_json.to_compact()
    );
}

#[test]
fn flaky_device_timeouts_never_promote_past_suspect() {
    let report = run_sim(&SimConfig {
        devices: 3,
        flaky: 1,
        slots: 40,
        ..base_config()
    })
    .expect("sim runs");
    assert!(report.timeouts > 0, "flaky actor must skip some slots");
    let flaky_state = report.states["dev-000"];
    assert!(
        flaky_state == DeviceState::Healthy || flaky_state == DeviceState::Suspect,
        "timeouts alone must never promote past Suspect, got {flaky_state}"
    );
    for line in report.transitions.lines() {
        assert!(
            !line.contains("quarantined"),
            "no quarantine from timeouts: {line}"
        );
    }
}

#[test]
fn quarantine_survives_reconnect_via_session_resumption() {
    let report = run_sim(&SimConfig {
        compromised: 1,
        slots: 16,
        // Keep the device compromised to the end: it must sit in
        // quarantine across many reconnects.
        restore_at_slot: 1_000,
        ..base_config()
    })
    .expect("sim runs");
    assert!(
        report
            .transitions
            .contains("suspect -> quarantined (reject-threshold)"),
        "device must be quarantined:\n{}",
        report.transitions
    );
    // Actors reconnect via their resumption token every scheduled
    // round; the server really resumed sessions rather than
    // re-HELLOing.
    assert!(
        report.server.resumed > 0,
        "expected resumed sessions, server stats: {:?}",
        report.server
    );
    // Verdicts kept arriving over those resumed connections and were
    // gated, not acted on: the device is still quarantined (its TTL
    // re-offers reprovisioning, but every forged round fails it back).
    let final_state = report.states["dev-000"];
    assert!(
        final_state == DeviceState::Quarantined || final_state == DeviceState::Reprovisioning,
        "still-compromised device must stay contained, got {final_state}"
    );
    assert!(
        !report.transitions.contains("(reprovisioned)"),
        "a still-forging device must never heal:\n{}",
        report.transitions
    );
}

#[test]
fn admin_quarantine_and_heal_override_policy() {
    let plane = FleetPlane::new(Policy::default());
    plane.register("dev-admin");
    let fired = plane.observe("dev-admin", Event::AdminQuarantine);
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].to, DeviceState::Quarantined);
    assert_eq!(fired[0].cause, Cause::AdminQuarantine);
    // Gated while quarantined: accepted verdicts change nothing.
    assert!(plane.observe("dev-admin", Event::Accepted).is_empty());
    let healed = plane.observe("dev-admin", Event::AdminHeal);
    assert_eq!(healed.len(), 1);
    assert_eq!(healed[0].to, DeviceState::Healthy);

    // The audit log round-trips through JSON (what `rap fleet
    // quarantine`/`heal` persist).
    let json = plane.to_json();
    let back = Registry::from_json(&json).expect("registry JSON parses");
    assert_eq!(back.transitions().len(), 2);
    assert_eq!(
        back.device("dev-admin").expect("device present").state(),
        DeviceState::Healthy
    );
}

#[test]
fn admin_plane_exposes_fleet_state() {
    let report = run_sim(&SimConfig {
        compromised: 1,
        admin: true,
        slots: 12,
        restore_at_slot: 1_000,
        ..base_config()
    })
    .expect("sim runs");
    let stats = report
        .admin_stats_json
        .expect("admin scrape succeeded with admin: true");
    let fleet = stats.get("fleet").expect("STATS JSON has a fleet section");
    let counts = fleet.get("counts").expect("fleet counts present");
    assert_eq!(
        counts.get("quarantined").and_then(|j| j.as_u64()),
        Some(1),
        "compromised device quarantined in admin JSON: {}",
        fleet.to_pretty()
    );
    let devices = fleet.get("devices").expect("fleet devices present");
    let dev = devices.get("dev-000").expect("dev-000 present");
    assert_eq!(
        dev.get("state").and_then(|j| j.as_str()),
        Some("quarantined")
    );
}

#[test]
fn registry_fuzz_oracle_runs_500_iterations_clean() {
    let mut events = 0u64;
    let mut transitions = 0u64;
    for i in 0..500u64 {
        let cs = rap_fuzz::rng::case_seed(0xF1EE7, i);
        let result = rap_fuzz::registry::run_registry_case(cs)
            .unwrap_or_else(|f| panic!("case {i} (seed {cs:#x}) failed: {}", f.detail));
        events += result.events;
        transitions += result.transitions;
    }
    assert!(events > 0);
    assert!(
        transitions > 0,
        "sequences must actually exercise transitions"
    );
}
