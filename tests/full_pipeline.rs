//! Cross-crate integration: the complete offline → attest → verify
//! pipeline over every evaluation workload, plus the figure-shape
//! invariants the paper's evaluation rests on.

use rap_bench::{measure_all, WorkloadReport};
use rap_link::{link, LinkOptions};
use rap_track::{device_key, CfaEngine, Challenge, EngineConfig, Verifier};

fn reports() -> Vec<WorkloadReport> {
    measure_all()
}

#[test]
fn fig1a_naive_mtb_logs_dominate() {
    for r in reports() {
        assert!(
            r.naive.cflog_bytes as f64 >= 1.5 * r.traces.cflog_bytes as f64,
            "{}: naive {} vs traces {}",
            r.name,
            r.naive.cflog_bytes,
            r.traces.cflog_bytes
        );
    }
}

#[test]
fn fig8_overhead_bands() {
    for r in reports() {
        // Naive MTB adds nothing.
        assert_eq!(r.naive.cycles, r.plain.cycles, "{}", r.name);
        // RAP-Track stays under 2x (paper band: +2%..+62%).
        let rap = r.rap.cycles as f64 / r.plain.cycles as f64;
        assert!(rap < 2.0, "{}: RAP overhead {rap:.2}x", r.name);
        // TRACES is always worse than RAP-Track.
        assert!(
            r.traces.cycles > r.rap.cycles,
            "{}: TRACES {} vs RAP {}",
            r.name,
            r.traces.cycles,
            r.rap.cycles
        );
    }
}

#[test]
fn fig9_rap_log_bounded_by_naive() {
    for r in reports() {
        // RAP-Track never logs more than ~1.1x naive MTB and is
        // dramatically smaller on loop-optimizable applications.
        assert!(
            r.rap.cflog_bytes as f64 <= 1.1 * r.naive.cflog_bytes as f64,
            "{}: rap {} vs naive {}",
            r.name,
            r.rap.cflog_bytes,
            r.naive.cflog_bytes
        );
    }
    // The loop-optimization stars from the paper's discussion.
    let by_name =
        |reports: &[WorkloadReport], n: &str| reports.iter().find(|r| r.name == n).unwrap().clone();
    let all = reports();
    for star in ["ultrasonic", "syringe"] {
        let r = by_name(&all, star);
        assert!(
            r.naive.cflog_bytes > 10 * r.rap.cflog_bytes,
            "{star} should show a large loop-opt win"
        );
    }
}

#[test]
fn fig9_instrumentation_equivalent_matches_rap() {
    // §V-B: same event set + same entry size → identical CF_Log.
    for r in reports() {
        assert_eq!(
            r.instr_equiv.cflog_bytes, r.rap.cflog_bytes,
            "{}: instr-equiv log must match RAP-Track's",
            r.name
        );
        assert!(
            r.instr_equiv.cycles > r.rap.cycles,
            "{}: instrumentation must be slower",
            r.name
        );
    }
}

#[test]
fn fig10_code_growth() {
    for r in reports() {
        assert!(r.rap.code_bytes > r.plain.code_bytes, "{}", r.name);
        assert!(r.traces.code_bytes > r.plain.code_bytes, "{}", r.name);
        // Trampolines + NOP padding stay within 2x of the original.
        assert!(
            r.rap.code_bytes < 2 * r.plain.code_bytes,
            "{}: code doubled: {} vs {}",
            r.name,
            r.rap.code_bytes,
            r.plain.code_bytes
        );
    }
}

#[test]
fn partial_transmissions_favor_rap() {
    for r in reports() {
        assert!(
            r.rap.transmissions <= r.naive.transmissions,
            "{}: rap {} vs naive {} transmissions",
            r.name,
            r.rap.transmissions,
            r.naive.transmissions
        );
    }
}

#[test]
fn attestation_is_deterministic() {
    let w = workloads::geiger::workload();
    let linked = link(&w.module, 0, LinkOptions::default()).unwrap();
    let key = device_key("det");
    let engine = CfaEngine::new(key.clone());
    let chal = Challenge::from_seed(5);

    let run = || {
        let mut machine = mcu_sim::Machine::new(linked.image.clone());
        (w.attach)(&mut machine);
        engine
            .attest(&mut machine, &linked.map, chal, EngineConfig::default())
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.reports, b.reports, "identical runs → identical reports");
    assert_eq!(a.outcome.cycles, b.outcome.cycles);
}

#[test]
fn deployed_binaries_decode_cleanly() {
    // Every deployed (rewritten) binary must round-trip through the
    // raw-bytes decoder — Vrf only needs the bytes plus the map.
    for w in workloads::all() {
        let linked = link(&w.module, 0, LinkOptions::default()).unwrap();
        let redecoded =
            armv8m_isa::Image::from_bytes(linked.image.base(), linked.image.bytes().to_vec())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(redecoded.instrs(), linked.image.instrs(), "{}", w.name);
    }
}

#[test]
fn deployed_binaries_roundtrip_through_tasm() {
    // The toolchain story closes: deployed image → .tasm → reassembled
    // byte-identical, for every workload's linked binary.
    for w in workloads::all() {
        let linked = link(&w.module, 0, LinkOptions::default()).unwrap();
        let tasm = linked.image.to_tasm();
        let rebuilt = armv8m_isa::parse_module(&tasm)
            .unwrap_or_else(|e| panic!("{}: tasm parse: {e}", w.name))
            .assemble(linked.image.base())
            .unwrap_or_else(|e| panic!("{}: reassemble: {e}", w.name));
        assert_eq!(rebuilt.bytes(), linked.image.bytes(), "{}", w.name);
    }
}

#[test]
fn verifier_accepts_only_matching_binary() {
    let w = workloads::temperature::workload();
    let linked = link(&w.module, 0, LinkOptions::default()).unwrap();
    let key = device_key("swap");
    let engine = CfaEngine::new(key.clone());
    let mut machine = mcu_sim::Machine::new(linked.image.clone());
    (w.attach)(&mut machine);
    let chal = Challenge::from_seed(8);
    let att = engine
        .attest(&mut machine, &linked.map, chal, EngineConfig::default())
        .unwrap();

    // A verifier expecting a *different* binary rejects on H_MEM.
    let other = workloads::geiger::workload();
    let other_linked = link(&other.module, 0, LinkOptions::default()).unwrap();
    let wrong_verifier = Verifier::builder()
        .key(key)
        .image(other_linked.image.clone())
        .map(other_linked.map.clone())
        .build()
        .expect("key/image/map are all set");
    assert!(matches!(
        wrong_verifier.verify(chal, &att.reports),
        Err(rap_track::Violation::HMemMismatch)
    ));
}

#[test]
fn ablation_loop_opt_shrinks_logs_globally() {
    let mut wins = 0;
    for w in workloads::all() {
        let with = rap_bench::measure_rap(&w);
        let without = rap_bench::measure_rap_with(&w, rap_bench::options_no_loop_opt());
        assert!(
            without.cflog_bytes >= with.cflog_bytes,
            "{}: opt must never grow the log",
            w.name
        );
        if without.cflog_bytes > with.cflog_bytes {
            wins += 1;
        }
    }
    assert!(
        wins >= 5,
        "loop opt should matter for most workloads: {wins}"
    );
}
