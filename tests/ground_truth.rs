//! Cross-validation against the execution oracle: the verifier's
//! reconstructed path must agree with what the CPU *actually executed*,
//! decision for decision — the strongest form of the losslessness
//! claim, checked on every workload.

use std::collections::HashMap;

use rap_link::{link, LinkOptions, SiteKind};
use rap_track::{device_key, CfaEngine, Challenge, EngineConfig, PathEvent, Verifier};

struct GroundTruth {
    /// Dynamic executions of each MTBAR stub (by stub source address).
    stub_executions: HashMap<u32, usize>,
}

fn run_with_oracle(
    w: &workloads::Workload,
) -> (rap_link::LinkedProgram, GroundTruth, Vec<PathEvent>) {
    let linked = link(&w.module, 0, LinkOptions::default()).unwrap();
    let key = device_key("oracle");
    let engine = CfaEngine::new(key.clone());
    let mut machine = mcu_sim::Machine::new(linked.image.clone());
    machine.enable_transfer_trace();
    (w.attach)(&mut machine);
    let chal = Challenge::from_seed(4);
    let att = engine
        .attest(
            &mut machine,
            &linked.map,
            chal,
            EngineConfig {
                watermark: Some(448),
                max_instrs: w.max_instrs * 2,
            },
        )
        .unwrap_or_else(|e| panic!("{}: attest: {e}", w.name));
    let verifier = Verifier::builder()
        .key(key)
        .image(linked.image.clone())
        .map(linked.map.clone())
        .build()
        .expect("key/image/map are all set");
    let path = verifier
        .verify(chal, &att.reports)
        .unwrap_or_else(|e| panic!("{}: verify: {e}", w.name));

    let transfers: Vec<(u32, u32)> = machine.transfer_trace().unwrap().to_vec();
    let mut stub_executions: HashMap<u32, usize> = HashMap::new();
    for (src, _) in &transfers {
        if linked.map.site_at_src(*src).is_some() {
            *stub_executions.entry(*src).or_default() += 1;
        }
    }
    (linked, GroundTruth { stub_executions }, path.events)
}

/// For every trampoline site, the number of *reconstructed* events must
/// equal the number of times the stub *actually executed*.
#[test]
fn reconstructed_event_counts_match_execution() {
    for w in workloads::all() {
        let (linked, truth, events) = run_with_oracle(&w);

        // Count reconstructed events per stub source.
        let mut reconstructed: HashMap<u32, usize> = HashMap::new();
        for e in &events {
            let (site_addr, not_taken) = match e {
                PathEvent::IndirectCall { site, .. }
                | PathEvent::Return { site, .. }
                | PathEvent::CondTaken { site, .. }
                | PathEvent::LoopContinue { site }
                | PathEvent::IndirectJump { site, .. } => (Some(*site), false),
                // A fall-through event either consumed a CondFallthrough
                // stub packet (site = the inserted B) or executed no
                // stub at all (site = the conditional itself).
                PathEvent::CondNotTaken { site } => (Some(*site), true),
                _ => (None, false),
            };
            let Some(mtbdr_addr) = site_addr else {
                continue;
            };
            // Map the MTBDR-side event site to the stub it targets.
            let Some(instr) = linked.image.instr_at(mtbdr_addr) else {
                continue;
            };
            let Some(target) = instr.target().and_then(|t| t.abs()) else {
                continue;
            };
            if let Some(site) = linked.map.site_at_entry(target) {
                let is_ft_stub = matches!(site.kind, SiteKind::CondFallthrough { .. });
                if not_taken && !is_ft_stub {
                    // Plain fall-through: the taken-stub did not run.
                    continue;
                }
                *reconstructed.entry(site.src).or_default() += 1;
            }
        }

        // `Return` events also cover untracked BX LR (no stub) — drop
        // ground-truth-absent entries symmetrically by comparing only
        // stub sources the oracle saw or the verifier claimed.
        let mut all_srcs: Vec<u32> = truth
            .stub_executions
            .keys()
            .chain(reconstructed.keys())
            .copied()
            .collect();
        all_srcs.sort_unstable();
        all_srcs.dedup();
        for src in all_srcs {
            let actual = truth.stub_executions.get(&src).copied().unwrap_or(0);
            let claimed = reconstructed.get(&src).copied().unwrap_or(0);
            assert_eq!(
                actual,
                claimed,
                "{}: stub {:#x} ({:?}) executed {} times but verifier reconstructed {}",
                w.name,
                src,
                linked.map.site_at_src(src).map(|s| s.kind),
                actual,
                claimed
            );
        }
    }
}

/// Every MTB packet the hardware recorded corresponds to an actual
/// executed transfer — the trace unit never invents packets.
#[test]
fn mtb_packets_are_a_subsequence_of_truth() {
    for w in workloads::all() {
        let linked = link(&w.module, 0, LinkOptions::default()).unwrap();
        let key = device_key("oracle2");
        let engine = CfaEngine::new(key);
        let mut machine = mcu_sim::Machine::new(linked.image.clone());
        machine.enable_transfer_trace();
        (w.attach)(&mut machine);
        let att = engine
            .attest(
                &mut machine,
                &linked.map,
                Challenge::from_seed(5),
                EngineConfig {
                    watermark: Some(448),
                    max_instrs: w.max_instrs * 2,
                },
            )
            .unwrap();
        let truth = machine.transfer_trace().unwrap();
        let log = att.combined_log();

        // Subsequence check.
        let mut ti = 0usize;
        for packet in &log.mtb {
            let pair = (packet.source, packet.dest);
            while ti < truth.len() && truth[ti] != pair {
                ti += 1;
            }
            assert!(
                ti < truth.len(),
                "{}: MTB packet {packet} has no matching executed transfer",
                w.name
            );
            ti += 1;
        }
    }
}

/// Transform equivalence and verifier acceptance on every shipped
/// workload: the rewritten image computes the same checksum as the
/// original (by the R7 convention), costs no fewer cycles, and its
/// honest evidence is accepted with a replay that reaches `HALT`.
#[test]
fn transform_preserves_results_and_verifier_accepts_every_workload() {
    for w in workloads::all() {
        // Plain semantics.
        let plain_image = w.module.assemble(0).unwrap();
        let mut plain = mcu_sim::Machine::new(plain_image);
        (w.attach)(&mut plain);
        let plain_out = plain
            .run(&mut mcu_sim::NullSecureWorld, w.max_instrs)
            .unwrap_or_else(|e| panic!("{}: plain run: {e}", w.name));
        assert!(plain.cpu.halted, "{}: plain run did not halt", w.name);
        let expected = plain.cpu.reg(w.result_reg());

        // Transformed semantics under attestation.
        let linked = link(&w.module, 0, LinkOptions::default()).unwrap();
        let key = device_key("gt-equiv");
        let engine = CfaEngine::new(key.clone());
        let mut machine = mcu_sim::Machine::new(linked.image.clone());
        (w.attach)(&mut machine);
        let chal = Challenge::from_seed(11);
        let att = engine
            .attest(
                &mut machine,
                &linked.map,
                chal,
                EngineConfig {
                    watermark: Some(448),
                    max_instrs: w.max_instrs * 2,
                },
            )
            .unwrap_or_else(|e| panic!("{}: attest: {e}", w.name));
        assert_eq!(
            machine.cpu.reg(w.result_reg()),
            expected,
            "{}: transformation changed the workload checksum",
            w.name
        );
        assert!(
            att.outcome.cycles >= plain_out.cycles,
            "{}: instrumented run was cheaper than the original ({} < {})",
            w.name,
            att.outcome.cycles,
            plain_out.cycles
        );

        // Verifier acceptance, ending in a reconstructed HALT.
        let verifier = Verifier::builder()
            .key(key)
            .image(linked.image.clone())
            .map(linked.map.clone())
            .build()
            .expect("key/image/map are all set");
        let path = verifier
            .verify(chal, &att.reports)
            .unwrap_or_else(|e| panic!("{}: verify: {e}", w.name));
        assert!(
            matches!(path.events.last(), Some(PathEvent::Halt(_))),
            "{}: replay did not reach HALT",
            w.name
        );
    }
}

/// The MTB records *exactly* the transfers whose source lies in MTBAR —
/// the DWT gating is precise on region boundaries.
#[test]
fn mtb_selection_matches_region_semantics() {
    let w = workloads::temperature::workload();
    let linked = link(&w.module, 0, LinkOptions::default()).unwrap();
    let key = device_key("oracle3");
    let engine = CfaEngine::new(key);
    let mut machine = mcu_sim::Machine::new(linked.image.clone());
    machine.enable_transfer_trace();
    (w.attach)(&mut machine);
    let att = engine
        .attest(
            &mut machine,
            &linked.map,
            Challenge::from_seed(6),
            EngineConfig::default(),
        )
        .unwrap();
    let truth = machine.transfer_trace().unwrap();
    let mtbar = linked.map.mtbar.unwrap();

    // Ground truth restricted to MTBAR sources, minus the activation
    // subtlety: stubs are entered at their padded head, so by the time
    // the branching instruction runs the MTB is active — the selected
    // sets must be identical.
    let expected: Vec<(u32, u32)> = truth
        .iter()
        .copied()
        .filter(|(src, _)| mtbar.contains(*src))
        .collect();
    let recorded: Vec<(u32, u32)> = att
        .combined_log()
        .mtb
        .iter()
        .map(|e| (e.source, e.dest))
        .collect();
    assert_eq!(expected, recorded);

    // And nothing from MTBDR leaks into the log.
    assert!(recorded.iter().all(|(src, _)| mtbar.contains(*src)));

    // Sanity: the kinds of selected sources are all known stubs.
    for (src, _) in &recorded {
        assert!(
            linked.map.site_at_src(*src).is_some(),
            "unknown stub source {src:#x}"
        );
    }
    // Suppress unused-field warning (transfers used in the other test).
    let _ = SiteKind::ReturnPop;
}
