//! Property-based tests over the core invariants:
//!
//! * encode/decode round-trips for arbitrary instructions,
//! * crypto incremental/one-shot agreement and tamper sensitivity,
//! * MTB buffer invariants under arbitrary record/drain sequences,
//! * and the headline property: **any** structured random program,
//!   linked by RAP-Track, attests and verifies losslessly, with the
//!   rewritten binary computing the same result as the original.

use proptest::prelude::*;

use armv8m_isa::{Asm, Cond, Instr, Reg, RegList, Target, decode, encode};
use rap_link::{LinkOptions, link};
use rap_track::{CfaEngine, Challenge, EngineConfig, Verifier, device_key};

// ---------------------------------------------------------------------
// ISA round-trip
// ---------------------------------------------------------------------

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|i| Reg::from_index(i).unwrap())
}

fn low_reg() -> impl Strategy<Value = Reg> {
    (0u8..8).prop_map(|i| Reg::from_index(i).unwrap())
}

fn any_cond() -> impl Strategy<Value = Cond> {
    (0u8..14).prop_map(|i| Cond::from_index(i).unwrap())
}

prop_compose! {
    fn aligned_addr()(a in 0u32..0x2_0000) -> u32 { a & !1 }
}

fn any_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (any_reg(), any::<u16>()).prop_map(|(rd, imm)| Instr::MovImm { rd, imm }),
        (any_reg(), any::<u16>()).prop_map(|(rd, imm)| Instr::MovTop { rd, imm }),
        (any_reg(), any_reg()).prop_map(|(rd, rm)| Instr::MovReg { rd, rm }),
        (any_reg(), any_reg(), any::<u16>())
            .prop_map(|(rd, rn, imm)| Instr::AddImm { rd, rn, imm }),
        (any_reg(), any_reg(), any::<u16>())
            .prop_map(|(rd, rn, imm)| Instr::SubImm { rd, rn, imm }),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, rn, rm)| Instr::AddReg { rd, rn, rm }),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, rn, rm)| Instr::MulReg { rd, rn, rm }),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, rn, rm)| Instr::UdivReg { rd, rn, rm }),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, rn, rm)| Instr::EorReg { rd, rn, rm }),
        (low_reg(), low_reg(), 0u8..32).prop_map(|(rd, rm, shift)| Instr::LslImm {
            rd,
            rm,
            shift
        }),
        (low_reg(), low_reg(), 0u8..32).prop_map(|(rd, rm, shift)| Instr::AsrImm {
            rd,
            rm,
            shift
        }),
        (any_reg(), any::<u16>()).prop_map(|(rn, imm)| Instr::CmpImm { rn, imm }),
        (any_reg(), any_reg(), any::<u16>())
            .prop_map(|(rt, rn, offset)| Instr::LdrImm { rt, rn, offset }),
        (any_reg(), any_reg(), any::<u16>())
            .prop_map(|(rt, rn, offset)| Instr::StrImm { rt, rn, offset }),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rt, rn, rm)| Instr::LdrReg { rt, rn, rm }),
        (0u16..256, any::<bool>()).prop_map(|(mask, lr)| {
            let mut list = RegList::from_mask(mask);
            if lr {
                list = list.with(Reg::Lr);
            }
            Instr::Push { list }
        }),
        (0u16..256, any::<bool>()).prop_map(|(mask, pc)| {
            let mut list = RegList::from_mask(mask);
            if pc {
                list = list.with(Reg::Pc);
            }
            Instr::Pop { list }
        }),
        aligned_addr().prop_map(|a| Instr::B {
            target: Target::Abs(a)
        }),
        (any_cond(), aligned_addr()).prop_map(|(cond, a)| Instr::BCond {
            cond,
            target: Target::Abs(a)
        }),
        aligned_addr().prop_map(|a| Instr::Bl {
            target: Target::Abs(a)
        }),
        any_reg().prop_map(|rm| Instr::Blx { rm }),
        any_reg().prop_map(|rm| Instr::Bx { rm }),
        Just(Instr::Nop),
        Just(Instr::Halt),
        (any::<u8>(), any_reg()).prop_map(|(service, arg)| Instr::SecureGateway {
            service,
            arg
        }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(instr in any_instr(), base in 0u32..0x1_0000) {
        let addr = base & !1;
        let bytes = encode(&instr, addr).expect("arbitrary instructions encode");
        prop_assert_eq!(bytes.len() as u32, instr.size());
        let (decoded, size) = decode(&bytes, addr).expect("decodes");
        prop_assert_eq!(size, instr.size());
        prop_assert_eq!(decoded, instr);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 2..8),
                            addr in 0u32..0x1000) {
        // Arbitrary bytes either decode or produce a typed error.
        let _ = decode(&bytes, addr & !1);
    }

    #[test]
    fn display_parse_roundtrip(instr in any_instr()) {
        // Every instruction's assembly text reparses to itself.
        let text = instr.to_string();
        let parsed = armv8m_isa::parse_instr(&text, 1)
            .unwrap_or_else(|e| panic!("`{text}` fails to parse: {e}"));
        prop_assert_eq!(parsed, instr);
    }

    #[test]
    fn parser_never_panics(line in "[ -~]{0,60}") {
        // Arbitrary printable input either parses or errors cleanly.
        let _ = armv8m_isa::parse_instr(&line, 1);
        let _ = armv8m_isa::parse_module(&line);
    }
}

// ---------------------------------------------------------------------
// Crypto
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn sha256_incremental_matches_oneshot(data in proptest::collection::vec(any::<u8>(), 0..600),
                                          split in 0usize..600) {
        let split = split.min(data.len());
        let mut h = rap_crypto::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), rap_crypto::sha256(&data));
    }

    #[test]
    fn hmac_detects_any_single_bit_flip(data in proptest::collection::vec(any::<u8>(), 1..64),
                                        byte in 0usize..64, bit in 0u8..8) {
        let byte = byte % data.len();
        let tag = rap_crypto::hmac_sha256(b"k", &data);
        let mut tampered = data.clone();
        tampered[byte] ^= 1 << bit;
        prop_assert_ne!(tag, rap_crypto::hmac_sha256(b"k", &tampered));
    }
}

// ---------------------------------------------------------------------
// MTB invariants
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn mtb_never_exceeds_capacity_and_counts_all(
        capacity in 1usize..64,
        ops in proptest::collection::vec(any::<bool>(), 0..200)
    ) {
        let mut mtb = trace_units::Mtb::new(trace_units::MtbConfig {
            capacity,
            activation_delay: 0,
        });
        mtb.set_master_trace(true);
        let mut recorded = 0u64;
        let mut drained = 0usize;
        for (i, op) in ops.iter().enumerate() {
            if *op {
                mtb.record(i as u32 * 2, i as u32 * 2 + 4);
                recorded += 1;
            } else {
                drained += mtb.drain().len();
            }
            prop_assert!(mtb.entries().len() <= capacity);
        }
        prop_assert_eq!(mtb.total_recorded(), recorded);
        // Whatever was drained plus what remains never exceeds the
        // total (equality iff no overflow).
        prop_assert!(drained + mtb.entries().len() <= recorded as usize);
        if !mtb.overflowed() && drained == 0 {
            prop_assert!(mtb.entries().len() == (recorded as usize).min(capacity));
        }
    }
}

// ---------------------------------------------------------------------
// Random-program pipeline property
// ---------------------------------------------------------------------

/// A structured random program: a tree of statements over registers
/// R0 (accumulator) and R1 (entropy), loop counters on R2-R4 by depth.
#[derive(Debug, Clone)]
enum Stmt {
    /// R0 += k.
    Add(u8),
    /// R1 = R1 * 31 + k (drives conditional variety).
    Stir(u8),
    /// if (R1 & 1 == parity) { then } else { else }.
    If(bool, Vec<Stmt>, Vec<Stmt>),
    /// Constant-count countdown loop.
    Loop(u8, Vec<Stmt>),
    /// Call one of the two library functions.
    Call(bool),
}

fn stmt_strategy(depth: u32) -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (1u8..20).prop_map(Stmt::Add),
        (0u8..255).prop_map(Stmt::Stir),
        any::<bool>().prop_map(Stmt::Call),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            (
                any::<bool>(),
                proptest::collection::vec(inner.clone(), 0..3),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(p, t, e)| Stmt::If(p, t, e)),
            ((1u8..5), proptest::collection::vec(inner, 1..3))
                .prop_map(|(n, b)| Stmt::Loop(n, b)),
        ]
    })
}

struct Lowering {
    asm: Asm,
    label: usize,
    depth: usize,
}

impl Lowering {
    fn fresh(&mut self, tag: &str) -> String {
        self.label += 1;
        format!("__p_{tag}_{}", self.label)
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Add(k) => {
                self.asm.addi(Reg::R0, Reg::R0, u16::from(*k));
            }
            Stmt::Stir(k) => {
                self.asm.movi(Reg::R5, 31);
                self.asm.mul(Reg::R1, Reg::R1, Reg::R5);
                self.asm.addi(Reg::R1, Reg::R1, u16::from(*k));
            }
            Stmt::If(parity, then_b, else_b) => {
                let else_l = self.fresh("else");
                let join_l = self.fresh("join");
                self.asm.movi(Reg::R5, 1);
                self.asm.and(Reg::R5, Reg::R1, Reg::R5);
                self.asm.cmpi(Reg::R5, u16::from(*parity));
                self.asm.bne(else_l.as_str());
                for s in then_b {
                    self.stmt(s);
                }
                self.asm.b(join_l.as_str());
                self.asm.label(else_l);
                for s in else_b {
                    self.stmt(s);
                }
                self.asm.label(join_l);
            }
            Stmt::Loop(n, body) => {
                // Loop counters nest on R2..R4; deeper nesting degrades
                // to straight-line execution of the body once.
                if self.depth >= 3 {
                    for s in body {
                        self.stmt(s);
                    }
                    return;
                }
                let reg = [Reg::R2, Reg::R3, Reg::R4][self.depth];
                self.depth += 1;
                let head = self.fresh("loop");
                self.asm.movi(reg, u16::from(*n));
                self.asm.label(head.clone());
                for s in body {
                    self.stmt(s);
                }
                self.asm.subi(reg, reg, 1);
                self.asm.cmpi(reg, 0);
                self.asm.bne(head.as_str());
                self.depth -= 1;
            }
            Stmt::Call(which) => {
                self.asm.bl(if *which { "lib_double" } else { "lib_mix" });
            }
        }
    }
}

fn lower(stmts: &[Stmt]) -> armv8m_isa::Module {
    let mut l = Lowering {
        asm: Asm::new(),
        label: 0,
        depth: 0,
    };
    l.asm.func("main");
    l.asm.movi(Reg::R0, 0);
    l.asm.movi(Reg::R1, 7);
    for s in stmts {
        l.stmt(s);
    }
    l.asm.halt();

    l.asm.func("lib_double");
    l.asm.add(Reg::R0, Reg::R0, Reg::R0);
    l.asm.ret();

    l.asm.func("lib_mix");
    l.asm.push(&[Reg::R4, Reg::Lr]);
    l.asm.movi(Reg::R4, 3);
    l.asm.add(Reg::R0, Reg::R0, Reg::R4);
    l.asm.bl("lib_double");
    l.asm.pop(&[Reg::R4, Reg::Pc]);

    l.asm.into_module()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Robustness: an adversary who somehow *could* re-sign reports
    /// (worst case) still cannot crash the Verifier or make it loop —
    /// arbitrary log mutations produce a clean verdict.
    #[test]
    fn mutated_logs_never_panic_the_verifier(
        mutations in proptest::collection::vec(
            (0usize..64, any::<u32>(), any::<u32>()), 1..6),
        drop_loops in any::<bool>(),
    ) {
        use rap_track::{CfaEngine, Challenge, EngineConfig, Report, Verifier, device_key};
        let mut a = Asm::new();
        a.func("main");
        a.movi(Reg::R0, 6);
        a.movi(Reg::R1, 0);
        a.label("loop");
        a.cmpi(Reg::R1, 3);
        a.beq("skip");
        a.addi(Reg::R1, Reg::R1, 1);
        a.label("skip");
        a.bl("leaf");
        a.subi(Reg::R0, Reg::R0, 1);
        a.cmpi(Reg::R0, 0);
        a.bne("loop");
        a.halt();
        a.func("leaf");
        a.push(&[Reg::Lr]);
        a.nop();
        a.pop(&[Reg::Pc]);
        let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");
        let key = device_key("fuzz");
        let engine = CfaEngine::new(key.clone());
        let mut machine = mcu_sim::Machine::new(linked.image.clone());
        let chal = Challenge::from_seed(1);
        let att = engine
            .attest(&mut machine, &linked.map, chal, EngineConfig::default())
            .expect("attests");

        // Mutate the log, then re-sign with the device key (the
        // strongest adversary assumption).
        let mut log = att.reports[0].log.clone();
        for (idx, src, dst) in mutations {
            if log.mtb.is_empty() {
                break;
            }
            let i = idx % log.mtb.len();
            log.mtb[i].source = src & !1;
            log.mtb[i].dest = dst & !1;
        }
        if drop_loops {
            log.loop_records.clear();
        }
        let forged = vec![Report::new(
            &key,
            chal,
            att.reports[0].h_mem,
            log,
            0,
            true,
            false,
        )];
        let verifier = Verifier::new(key, linked.image.clone(), linked.map.clone());
        // Must terminate with a verdict, never panic or hang.
        let _ = verifier.verify(chal, &forged);
    }

    /// The crown-jewel property: any structured random program
    /// (1) keeps its semantics after RAP-Track rewriting and
    /// (2) attests and verifies losslessly.
    #[test]
    fn random_programs_attest_and_verify(stmts in proptest::collection::vec(stmt_strategy(3), 1..6)) {
        let module = lower(&stmts);

        // Plain semantics.
        let plain_image = module.assemble(0).expect("assembles");
        let mut plain = mcu_sim::Machine::new(plain_image);
        plain
            .run(&mut mcu_sim::NullSecureWorld, 2_000_000)
            .expect("plain runs");
        let expected = (plain.cpu.reg(Reg::R0), plain.cpu.reg(Reg::R1));

        // Linked semantics + attestation.
        let linked = link(&module, 0, LinkOptions::default()).expect("links");
        let key = device_key("prop");
        let engine = CfaEngine::new(key.clone());
        let mut machine = mcu_sim::Machine::new(linked.image.clone());
        let chal = Challenge::from_seed(42);
        let att = engine
            .attest(
                &mut machine,
                &linked.map,
                chal,
                EngineConfig {
                    watermark: Some(448),
                    max_instrs: 4_000_000,
                },
            )
            .expect("attests");
        prop_assert_eq!(
            (machine.cpu.reg(Reg::R0), machine.cpu.reg(Reg::R1)),
            expected,
            "rewriting changed program semantics"
        );

        // Lossless verification.
        let verifier = Verifier::new(key, linked.image.clone(), linked.map.clone());
        let path = verifier.verify(chal, &att.reports).expect("verifies");
        prop_assert!(!path.events.is_empty());
    }
}
