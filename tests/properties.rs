//! Property-based tests over the core invariants:
//!
//! * encode/decode round-trips for arbitrary instructions,
//! * crypto incremental/one-shot agreement and tamper sensitivity,
//! * MTB buffer invariants under arbitrary record/drain sequences,
//! * and the headline property: **any** structured random program,
//!   linked by RAP-Track, attests and verifies losslessly, with the
//!   rewritten binary computing the same result as the original.
//!
//! The generators run on a self-contained deterministic PRNG (the
//! evaluation machines are air-gapped, so the external `proptest`
//! dependency was replaced). Every case is reproducible from its case
//! index; failures print the seed so a case can be replayed in
//! isolation.

use armv8m_isa::{decode, encode, Asm, Cond, Instr, Reg, RegList, Target};
use rap_link::{link, LinkOptions};
use rap_track::{device_key, CfaEngine, Challenge, EngineConfig, Report, Verifier};

// ---------------------------------------------------------------------
// Deterministic generator substrate
// ---------------------------------------------------------------------

/// SplitMix64: tiny, statistically solid, and fully deterministic.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next_u64() % (hi - lo)
    }

    fn usize_below(&mut self, n: usize) -> usize {
        self.range(0, n as u64) as usize
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u8()).collect()
    }
}

/// Runs `f` across `cases` deterministic seeds, labelling any panic
/// with the failing seed and iteration index so it can be replayed in
/// isolation: `RAP_PROP_SEED=<seed> cargo test --test properties
/// <property>` re-runs exactly the failing case.
fn for_each_case(property: &str, cases: u64, mut f: impl FnMut(&mut Rng)) {
    if let Ok(v) = std::env::var("RAP_PROP_SEED") {
        let seed = v
            .strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16))
            .unwrap_or_else(|| v.parse())
            .unwrap_or_else(|_| panic!("bad RAP_PROP_SEED value `{v}`"));
        eprintln!("property `{property}`: replaying single case from RAP_PROP_SEED={seed:#x}");
        f(&mut Rng::new(seed));
        return;
    }
    for case in 0..cases {
        // Seed mixes the property name so different properties don't
        // see correlated streams.
        let mut seed = 0xCAFE_F00D_u64.wrapping_mul(case + 1);
        for b in property.bytes() {
            seed = seed.wrapping_mul(31).wrapping_add(u64::from(b));
        }
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(panic) = result {
            eprintln!(
                "property `{property}` failed at case {case}/{cases} (seed {seed:#x}) — replay \
                 with: RAP_PROP_SEED={seed:#x} cargo test --test properties {property}"
            );
            std::panic::resume_unwind(panic);
        }
    }
}

// ---------------------------------------------------------------------
// ISA round-trip
// ---------------------------------------------------------------------

fn any_reg(rng: &mut Rng) -> Reg {
    Reg::from_index(rng.range(0, 16) as u8).unwrap()
}

fn low_reg(rng: &mut Rng) -> Reg {
    Reg::from_index(rng.range(0, 8) as u8).unwrap()
}

fn any_cond(rng: &mut Rng) -> Cond {
    Cond::from_index(rng.range(0, 14) as u8).unwrap()
}

fn aligned_addr(rng: &mut Rng) -> u32 {
    (rng.range(0, 0x2_0000) as u32) & !1
}

fn any_instr(rng: &mut Rng) -> Instr {
    match rng.range(0, 25) {
        0 => Instr::MovImm {
            rd: any_reg(rng),
            imm: rng.next_u16(),
        },
        1 => Instr::MovTop {
            rd: any_reg(rng),
            imm: rng.next_u16(),
        },
        2 => Instr::MovReg {
            rd: any_reg(rng),
            rm: any_reg(rng),
        },
        3 => Instr::AddImm {
            rd: any_reg(rng),
            rn: any_reg(rng),
            imm: rng.next_u16(),
        },
        4 => Instr::SubImm {
            rd: any_reg(rng),
            rn: any_reg(rng),
            imm: rng.next_u16(),
        },
        5 => Instr::AddReg {
            rd: any_reg(rng),
            rn: any_reg(rng),
            rm: any_reg(rng),
        },
        6 => Instr::MulReg {
            rd: any_reg(rng),
            rn: any_reg(rng),
            rm: any_reg(rng),
        },
        7 => Instr::UdivReg {
            rd: any_reg(rng),
            rn: any_reg(rng),
            rm: any_reg(rng),
        },
        8 => Instr::EorReg {
            rd: any_reg(rng),
            rn: any_reg(rng),
            rm: any_reg(rng),
        },
        9 => Instr::LslImm {
            rd: low_reg(rng),
            rm: low_reg(rng),
            shift: rng.range(0, 32) as u8,
        },
        10 => Instr::AsrImm {
            rd: low_reg(rng),
            rm: low_reg(rng),
            shift: rng.range(0, 32) as u8,
        },
        11 => Instr::CmpImm {
            rn: any_reg(rng),
            imm: rng.next_u16(),
        },
        12 => Instr::LdrImm {
            rt: any_reg(rng),
            rn: any_reg(rng),
            offset: rng.next_u16(),
        },
        13 => Instr::StrImm {
            rt: any_reg(rng),
            rn: any_reg(rng),
            offset: rng.next_u16(),
        },
        14 => Instr::LdrReg {
            rt: any_reg(rng),
            rn: any_reg(rng),
            rm: any_reg(rng),
        },
        15 => {
            let mut list = RegList::from_mask(rng.range(0, 256) as u16);
            if rng.next_bool() {
                list = list.with(Reg::Lr);
            }
            Instr::Push { list }
        }
        16 => {
            let mut list = RegList::from_mask(rng.range(0, 256) as u16);
            if rng.next_bool() {
                list = list.with(Reg::Pc);
            }
            Instr::Pop { list }
        }
        17 => Instr::B {
            target: Target::Abs(aligned_addr(rng)),
        },
        18 => Instr::BCond {
            cond: any_cond(rng),
            target: Target::Abs(aligned_addr(rng)),
        },
        19 => Instr::Bl {
            target: Target::Abs(aligned_addr(rng)),
        },
        20 => Instr::Blx { rm: any_reg(rng) },
        21 => Instr::Bx { rm: any_reg(rng) },
        22 => Instr::Nop,
        23 => Instr::Halt,
        _ => Instr::SecureGateway {
            service: rng.next_u8(),
            arg: any_reg(rng),
        },
    }
}

#[test]
fn encode_decode_roundtrip() {
    for_each_case("encode_decode_roundtrip", 512, |rng| {
        let instr = any_instr(rng);
        let addr = rng.range(0, 0x1_0000) as u32 & !1;
        let bytes = encode(&instr, addr).expect("arbitrary instructions encode");
        assert_eq!(bytes.len() as u32, instr.size());
        let (decoded, size) = decode(&bytes, addr).expect("decodes");
        assert_eq!(size, instr.size());
        assert_eq!(decoded, instr);
    });
}

#[test]
fn decoder_never_panics() {
    for_each_case("decoder_never_panics", 2048, |rng| {
        let len = rng.range(2, 8) as usize;
        let bytes = rng.bytes(len);
        let addr = rng.range(0, 0x1000) as u32 & !1;
        // Arbitrary bytes either decode or produce a typed error.
        let _ = decode(&bytes, addr);
    });
}

#[test]
fn display_parse_roundtrip() {
    for_each_case("display_parse_roundtrip", 512, |rng| {
        // Every instruction's assembly text reparses to itself.
        let instr = any_instr(rng);
        let text = instr.to_string();
        let parsed = armv8m_isa::parse_instr(&text, 1)
            .unwrap_or_else(|e| panic!("`{text}` fails to parse: {e}"));
        assert_eq!(parsed, instr);
    });
}

#[test]
fn parser_never_panics() {
    for_each_case("parser_never_panics", 2048, |rng| {
        let len = rng.usize_below(61);
        let line: String = (0..len)
            .map(|_| char::from(rng.range(0x20, 0x7F) as u8))
            .collect();
        // Arbitrary printable input either parses or errors cleanly.
        let _ = armv8m_isa::parse_instr(&line, 1);
        let _ = armv8m_isa::parse_module(&line);
    });
}

// ---------------------------------------------------------------------
// Crypto
// ---------------------------------------------------------------------

#[test]
fn sha256_incremental_matches_oneshot() {
    for_each_case("sha256_incremental_matches_oneshot", 256, |rng| {
        let len = rng.usize_below(600);
        let data = rng.bytes(len);
        let split = rng.usize_below(600).min(data.len());
        let mut h = rap_crypto::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize(), rap_crypto::sha256(&data));
    });
}

#[test]
fn hmac_detects_any_single_bit_flip() {
    for_each_case("hmac_detects_any_single_bit_flip", 256, |rng| {
        let len = rng.range(1, 64) as usize;
        let data = rng.bytes(len);
        let byte = rng.usize_below(data.len());
        let bit = rng.range(0, 8) as u8;
        let tag = rap_crypto::hmac_sha256(b"k", &data);
        let mut tampered = data.clone();
        tampered[byte] ^= 1 << bit;
        assert_ne!(tag, rap_crypto::hmac_sha256(b"k", &tampered));
    });
}

// ---------------------------------------------------------------------
// MTB invariants
// ---------------------------------------------------------------------

#[test]
fn mtb_never_exceeds_capacity_and_counts_all() {
    for_each_case("mtb_never_exceeds_capacity_and_counts_all", 256, |rng| {
        let capacity = rng.range(1, 64) as usize;
        let ops: Vec<bool> = (0..rng.usize_below(200)).map(|_| rng.next_bool()).collect();
        let mut mtb = trace_units::Mtb::new(trace_units::MtbConfig {
            capacity,
            activation_delay: 0,
        });
        mtb.set_master_trace(true);
        let mut recorded = 0u64;
        let mut drained = 0usize;
        for (i, op) in ops.iter().enumerate() {
            if *op {
                mtb.record(i as u32 * 2, i as u32 * 2 + 4);
                recorded += 1;
            } else {
                drained += mtb.drain().len();
            }
            assert!(mtb.entries().len() <= capacity);
        }
        assert_eq!(mtb.total_recorded(), recorded);
        // Whatever was drained plus what remains never exceeds the
        // total (equality iff no overflow).
        assert!(drained + mtb.entries().len() <= recorded as usize);
        if !mtb.overflowed() && drained == 0 {
            assert!(mtb.entries().len() == (recorded as usize).min(capacity));
        }
    });
}

// ---------------------------------------------------------------------
// Random-program pipeline property
// ---------------------------------------------------------------------

/// A structured random program: a tree of statements over registers
/// R0 (accumulator) and R1 (entropy), loop counters on R2-R4 by depth.
#[derive(Debug, Clone)]
enum Stmt {
    /// R0 += k.
    Add(u8),
    /// R1 = R1 * 31 + k (drives conditional variety).
    Stir(u8),
    /// if (R1 & 1 == parity) { then } else { else }.
    If(bool, Vec<Stmt>, Vec<Stmt>),
    /// Constant-count countdown loop.
    Loop(u8, Vec<Stmt>),
    /// Call one of the two library functions.
    Call(bool),
}

fn gen_stmt(rng: &mut Rng, depth: u32) -> Stmt {
    // Leaves get likelier as the tree deepens; depth 0 forces a leaf.
    if depth == 0 || rng.range(0, 3) == 0 {
        return match rng.range(0, 3) {
            0 => Stmt::Add(rng.range(1, 20) as u8),
            1 => Stmt::Stir(rng.range(0, 255) as u8),
            _ => Stmt::Call(rng.next_bool()),
        };
    }
    if rng.next_bool() {
        let then_b = gen_block(rng, depth - 1, 0, 3);
        let else_b = gen_block(rng, depth - 1, 0, 3);
        Stmt::If(rng.next_bool(), then_b, else_b)
    } else {
        let body = gen_block(rng, depth - 1, 1, 3);
        Stmt::Loop(rng.range(1, 5) as u8, body)
    }
}

fn gen_block(rng: &mut Rng, depth: u32, min: usize, max: usize) -> Vec<Stmt> {
    let n = rng.range(min as u64, max as u64) as usize;
    (0..n).map(|_| gen_stmt(rng, depth)).collect()
}

struct Lowering {
    asm: Asm,
    label: usize,
    depth: usize,
}

impl Lowering {
    fn fresh(&mut self, tag: &str) -> String {
        self.label += 1;
        format!("__p_{tag}_{}", self.label)
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Add(k) => {
                self.asm.addi(Reg::R0, Reg::R0, u16::from(*k));
            }
            Stmt::Stir(k) => {
                self.asm.movi(Reg::R5, 31);
                self.asm.mul(Reg::R1, Reg::R1, Reg::R5);
                self.asm.addi(Reg::R1, Reg::R1, u16::from(*k));
            }
            Stmt::If(parity, then_b, else_b) => {
                let else_l = self.fresh("else");
                let join_l = self.fresh("join");
                self.asm.movi(Reg::R5, 1);
                self.asm.and(Reg::R5, Reg::R1, Reg::R5);
                self.asm.cmpi(Reg::R5, u16::from(*parity));
                self.asm.bne(else_l.as_str());
                for s in then_b {
                    self.stmt(s);
                }
                self.asm.b(join_l.as_str());
                self.asm.label(else_l);
                for s in else_b {
                    self.stmt(s);
                }
                self.asm.label(join_l);
            }
            Stmt::Loop(n, body) => {
                // Loop counters nest on R2..R4; deeper nesting degrades
                // to straight-line execution of the body once.
                if self.depth >= 3 {
                    for s in body {
                        self.stmt(s);
                    }
                    return;
                }
                let reg = [Reg::R2, Reg::R3, Reg::R4][self.depth];
                self.depth += 1;
                let head = self.fresh("loop");
                self.asm.movi(reg, u16::from(*n));
                self.asm.label(head.clone());
                for s in body {
                    self.stmt(s);
                }
                self.asm.subi(reg, reg, 1);
                self.asm.cmpi(reg, 0);
                self.asm.bne(head.as_str());
                self.depth -= 1;
            }
            Stmt::Call(which) => {
                self.asm.bl(if *which { "lib_double" } else { "lib_mix" });
            }
        }
    }
}

fn lower(stmts: &[Stmt]) -> armv8m_isa::Module {
    let mut l = Lowering {
        asm: Asm::new(),
        label: 0,
        depth: 0,
    };
    l.asm.func("main");
    l.asm.movi(Reg::R0, 0);
    l.asm.movi(Reg::R1, 7);
    for s in stmts {
        l.stmt(s);
    }
    l.asm.halt();

    l.asm.func("lib_double");
    l.asm.add(Reg::R0, Reg::R0, Reg::R0);
    l.asm.ret();

    l.asm.func("lib_mix");
    l.asm.push(&[Reg::R4, Reg::Lr]);
    l.asm.movi(Reg::R4, 3);
    l.asm.add(Reg::R0, Reg::R0, Reg::R4);
    l.asm.bl("lib_double");
    l.asm.pop(&[Reg::R4, Reg::Pc]);

    l.asm.into_module()
}

/// Robustness: an adversary who somehow *could* re-sign reports
/// (worst case) still cannot crash the Verifier or make it loop —
/// arbitrary log mutations produce a clean verdict.
#[test]
fn mutated_logs_never_panic_the_verifier() {
    let mut a = Asm::new();
    a.func("main");
    a.movi(Reg::R0, 6);
    a.movi(Reg::R1, 0);
    a.label("loop");
    a.cmpi(Reg::R1, 3);
    a.beq("skip");
    a.addi(Reg::R1, Reg::R1, 1);
    a.label("skip");
    a.bl("leaf");
    a.subi(Reg::R0, Reg::R0, 1);
    a.cmpi(Reg::R0, 0);
    a.bne("loop");
    a.halt();
    a.func("leaf");
    a.push(&[Reg::Lr]);
    a.nop();
    a.pop(&[Reg::Pc]);
    let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");
    let key = device_key("fuzz");
    let engine = CfaEngine::new(key.clone());
    let mut machine = mcu_sim::Machine::new(linked.image.clone());
    let chal = Challenge::from_seed(1);
    let att = engine
        .attest(&mut machine, &linked.map, chal, EngineConfig::default())
        .expect("attests");
    let verifier = Verifier::builder()
        .key(key.clone())
        .image(linked.image.clone())
        .map(linked.map.clone())
        .build()
        .expect("key/image/map are all set");

    for_each_case("mutated_logs_never_panic_the_verifier", 64, |rng| {
        // Mutate the log, then re-sign with the device key (the
        // strongest adversary assumption).
        let mut log = att.reports[0].log.clone();
        for _ in 0..rng.range(1, 6) {
            if log.mtb.is_empty() {
                break;
            }
            let i = rng.usize_below(log.mtb.len());
            log.mtb[i].source = rng.next_u32() & !1;
            log.mtb[i].dest = rng.next_u32() & !1;
        }
        if rng.next_bool() {
            log.loop_records.clear();
        }
        let forged = vec![Report::new(
            &key,
            chal,
            att.reports[0].h_mem,
            log,
            0,
            true,
            false,
        )];
        // Must terminate with a verdict, never panic or hang.
        let _ = verifier.verify(chal, &forged);
    });
}

/// The crown-jewel property: any structured random program
/// (1) keeps its semantics after RAP-Track rewriting and
/// (2) attests and verifies losslessly.
#[test]
fn random_programs_attest_and_verify() {
    for_each_case("random_programs_attest_and_verify", 48, |rng| {
        let stmts = gen_block(rng, 3, 1, 6);
        let module = lower(&stmts);

        // Plain semantics.
        let plain_image = module.assemble(0).expect("assembles");
        let mut plain = mcu_sim::Machine::new(plain_image);
        plain
            .run(&mut mcu_sim::NullSecureWorld, 2_000_000)
            .expect("plain runs");
        let expected = (plain.cpu.reg(Reg::R0), plain.cpu.reg(Reg::R1));

        // Linked semantics + attestation.
        let linked = link(&module, 0, LinkOptions::default()).expect("links");
        let key = device_key("prop");
        let engine = CfaEngine::new(key.clone());
        let mut machine = mcu_sim::Machine::new(linked.image.clone());
        let chal = Challenge::from_seed(42);
        let att = engine
            .attest(
                &mut machine,
                &linked.map,
                chal,
                EngineConfig {
                    watermark: Some(448),
                    max_instrs: 4_000_000,
                },
            )
            .expect("attests");
        assert_eq!(
            (machine.cpu.reg(Reg::R0), machine.cpu.reg(Reg::R1)),
            expected,
            "rewriting changed program semantics"
        );

        // Lossless verification.
        let verifier = Verifier::builder()
            .key(key)
            .image(linked.image.clone())
            .map(linked.map.clone())
            .build()
            .expect("key/image/map are all set");
        let path = verifier.verify(chal, &att.reports).expect("verifies");
        assert!(!path.events.is_empty());
    });
}
