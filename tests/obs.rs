//! Observability-layer integration: the global rap-obs registry must
//! agree exactly with the verifier's own [`VerifierStats`] whether jobs
//! run sequentially or through the worker pool, histograms must be
//! internally consistent, and the trace collector must record only when
//! enabled.
//!
//! The registry and trace collector are process-global, so every test
//! in this binary serializes on [`OBS_LOCK`] and works with snapshot
//! *diffs* (movement across its own run), never absolute values.

use std::sync::Mutex;

use rap_link::{link, LinkOptions};
use rap_obs::Snapshot;
use rap_track::{
    device_key, BatchOptions, CfaEngine, Challenge, EngineConfig, FleetJob, Report, Verifier,
    VerifierStats,
};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

struct Attested {
    key: rap_track::Key,
    image: armv8m_isa::Image,
    map: rap_link::LinkMap,
    chal: Challenge,
    reports: Vec<Report>,
}

fn attest_workload(w: &workloads::Workload, seed: u64) -> Attested {
    let linked = link(&w.module, 0, LinkOptions::default()).expect("workload links");
    let key = device_key("obs-test");
    let engine = CfaEngine::new(key.clone());
    let chal = Challenge::from_seed(seed);
    let mut machine = mcu_sim::Machine::new(linked.image.clone());
    (w.attach)(&mut machine);
    let att = engine
        .attest(
            &mut machine,
            &linked.map,
            chal,
            EngineConfig {
                max_instrs: w.max_instrs * 2,
                watermark: Some(256),
            },
        )
        .expect("workload attests");
    Attested {
        key,
        image: linked.image,
        map: linked.map,
        chal,
        reports: att.reports,
    }
}

fn fleet_jobs(attested: &Attested, copies: usize) -> Vec<FleetJob> {
    (0..copies)
        .map(|i| FleetJob {
            device: format!("dev-{i:03}"),
            chal: attested.chal,
            reports: attested.reports.clone(),
        })
        .collect()
}

fn fresh_verifier(attested: &Attested) -> Verifier {
    Verifier::builder()
        .key(attested.key.clone())
        .image(attested.image.clone())
        .map(attested.map.clone())
        .build()
        .expect("key/image/map are all set")
}

/// The registry movement attributable to one verification run.
fn delta_of(run: impl FnOnce()) -> Snapshot {
    let baseline = rap_obs::global().snapshot();
    run();
    rap_obs::global().snapshot().diff(&baseline)
}

/// Registry counters the run should have produced, derived from the
/// verifier's own stats (the two accounting paths are independent).
fn assert_registry_matches_stats(delta: &Snapshot, stats: &VerifierStats, label: &str) {
    assert_eq!(
        delta.counter("verifier_jobs_total"),
        stats.jobs,
        "{label}: jobs"
    );
    assert_eq!(
        delta.counter("verifier_cache_hits_total") + delta.counter("verifier_cache_misses_total"),
        stats.cache_hits + stats.cache_misses,
        "{label}: cache lookups"
    );
    assert_eq!(
        delta.counter("verifier_replay_live_steps_total"),
        stats.live_steps,
        "{label}: live steps"
    );
    assert_eq!(
        delta.counter("verifier_replay_cached_steps_total"),
        stats.cached_steps,
        "{label}: cached steps"
    );
}

/// Satellite: with 4+ workers the aggregated registry counters —
/// reports verified, cache hits+misses, live+cached replay steps —
/// exactly match a sequential run of the same jobs.
#[test]
fn fleet_counters_match_sequential_totals() {
    let _guard = lock();
    let attested = attest_workload(&workloads::gps::workload(), 3);
    let jobs = fleet_jobs(&attested, 12);

    let seq_verifier = fresh_verifier(&attested);
    let seq_delta = delta_of(|| {
        let outcomes = seq_verifier
            .fleet(BatchOptions::with_threads(1))
            .sequential(jobs.clone());
        assert!(outcomes.iter().all(|o| o.accepted()));
    });
    let seq_stats = seq_verifier.stats();

    let fleet_verifier = fresh_verifier(&attested);
    let fleet_delta = delta_of(|| {
        let outcomes = fleet_verifier
            .fleet(BatchOptions::with_threads(4))
            .run(jobs.clone());
        assert!(outcomes.iter().all(|o| o.accepted()));
    });
    let fleet_stats = fleet_verifier.stats();

    // Each accounting path is self-consistent...
    assert_registry_matches_stats(&seq_delta, &seq_stats, "sequential");
    assert_registry_matches_stats(&fleet_delta, &fleet_stats, "fleet");

    // ...and the two runs agree on every aggregate. (Hit/miss *splits*
    // may differ — two workers can race to build the same segment — but
    // the lookup total, the step totals and the verdict counters are
    // deterministic.)
    for name in [
        "verifier_jobs_total",
        "verifier_jobs_accepted_total",
        "verifier_jobs_rejected_total",
        "verifier_replay_live_steps_total",
        "verifier_replay_cached_steps_total",
        "batch_jobs_total",
    ] {
        assert_eq!(
            seq_delta.counter(name),
            fleet_delta.counter(name),
            "fleet vs sequential disagree on {name}"
        );
    }
    assert_eq!(
        seq_delta.counter("verifier_cache_hits_total")
            + seq_delta.counter("verifier_cache_misses_total"),
        fleet_delta.counter("verifier_cache_hits_total")
            + fleet_delta.counter("verifier_cache_misses_total"),
        "fleet vs sequential disagree on total cache lookups"
    );
    assert_eq!(seq_stats.jobs, jobs.len() as u64);
    assert_eq!(fleet_stats.live_steps, seq_stats.live_steps);
    assert_eq!(fleet_stats.cached_steps, seq_stats.cached_steps);
}

/// Rejected jobs land in the rejection counter and the per-violation
/// family, and never in the accepted counter.
#[test]
fn violation_kinds_are_counted() {
    let _guard = lock();
    let attested = attest_workload(&workloads::temperature::workload(), 3);
    let verifier = fresh_verifier(&attested);
    let delta = delta_of(|| {
        let wrong = Challenge::from_seed(999);
        assert!(verifier.verify(wrong, &attested.reports).is_err());
    });
    assert_eq!(delta.counter("verifier_jobs_total"), 1);
    assert_eq!(delta.counter("verifier_jobs_rejected_total"), 1);
    assert_eq!(delta.counter("verifier_jobs_accepted_total"), 0);
    assert_eq!(
        delta.counter_family("verifier_violations_total"),
        1,
        "exactly one violation must be recorded: {:?}",
        delta.counters
    );
}

/// Histogram internal consistency: bucket sums equal observation
/// counts, for every histogram the run touched.
#[test]
fn histogram_bucket_sums_equal_counts() {
    let _guard = lock();
    let attested = attest_workload(&workloads::temperature::workload(), 3);
    let jobs = fleet_jobs(&attested, 8);
    let verifier = fresh_verifier(&attested);
    let delta = delta_of(|| {
        let outcomes = verifier.fleet(BatchOptions::with_threads(4)).run(jobs);
        assert!(outcomes.iter().all(|o| o.accepted()));
    });

    let hist = delta
        .histogram("batch_job_latency_ns")
        .expect("latency histogram exists");
    assert_eq!(hist.count, 8, "one observation per job");
    assert_eq!(
        hist.buckets.iter().sum::<u64>(),
        hist.count,
        "bucket occupancy must sum to the observation count"
    );
    assert_eq!(hist.bounds.len() + 1, hist.buckets.len());
    for h in &delta.histograms {
        assert_eq!(
            h.buckets.iter().sum::<u64>(),
            h.count,
            "{}: bucket occupancy must sum to the observation count",
            h.name
        );
    }
}

/// Acceptance: the `--metrics` JSON produced for a fleet run carries
/// counters that match the `VerifierStats` of that same run.
#[test]
fn metrics_json_matches_verifier_stats() {
    let _guard = lock();
    let (img, map_text, _) =
        rap_cli::cmd_link(rap_cli::DEMO_PROGRAM, rap_cli::LinkCmdOptions::default()).unwrap();
    let (stream, _) = rap_cli::cmd_attest(&img, &map_text, 0, 7, "obs-test", None, None).unwrap();
    let streams: Vec<(String, Vec<u8>)> = (0..6)
        .map(|i| (format!("dev-{i}.rpt"), stream.clone()))
        .collect();

    let baseline = rap_obs::global().snapshot();
    let (ok, _, stats) =
        rap_cli::cmd_verify_fleet(&img, &map_text, &streams, 0, 7, "obs-test", 4, None).unwrap();
    assert!(ok);
    let json = rap_cli::metrics_json(&baseline, &stats);

    let doc = rap_obs::json::parse(&json).expect("artifact parses");
    let snap = Snapshot::from_json(doc.get("metrics").expect("metrics section")).unwrap();
    assert_eq!(snap.counter("verifier_jobs_total"), stats.jobs);
    assert_eq!(snap.counter("verifier_jobs_total"), streams.len() as u64);
    assert_eq!(
        snap.counter("verifier_replay_live_steps_total"),
        stats.live_steps
    );
    assert_eq!(
        snap.counter("verifier_replay_cached_steps_total"),
        stats.cached_steps
    );
    assert_eq!(
        snap.counter("verifier_cache_hits_total") + snap.counter("verifier_cache_misses_total"),
        stats.cache_hits + stats.cache_misses
    );

    let vs = doc.get("verifier_stats").expect("stats section");
    assert_eq!(
        vs.get("jobs").and_then(rap_obs::Json::as_u64),
        Some(stats.jobs)
    );
    assert_eq!(
        vs.get("wall_ns").and_then(rap_obs::Json::as_u64),
        Some(stats.wall_ns)
    );

    // The same artifact renders through `rap stats`.
    let rendered = rap_cli::cmd_stats(&json).expect("renders");
    assert!(rendered.contains("verifier_jobs_total"), "{rendered}");
    assert!(rendered.contains("verifier:"), "{rendered}");
}

/// The trace collector records spans and segment builds during fleet
/// verification when enabled, and nothing at all when disabled.
#[test]
fn trace_collector_records_only_when_enabled() {
    let _guard = lock();
    let attested = attest_workload(&workloads::temperature::workload(), 3);
    let jobs = fleet_jobs(&attested, 4);

    rap_obs::disable_tracing();
    let _ = rap_obs::drain_events();
    let verifier = fresh_verifier(&attested);
    let outcomes = verifier
        .fleet(BatchOptions::with_threads(4))
        .run(jobs.clone());
    assert!(outcomes.iter().all(|o| o.accepted()));
    assert!(
        rap_obs::drain_events().is_empty(),
        "disabled collector must record nothing"
    );

    rap_obs::enable_tracing(0);
    let verifier = fresh_verifier(&attested);
    let outcomes = verifier.fleet(BatchOptions::with_threads(4)).run(jobs);
    assert!(outcomes.iter().all(|o| o.accepted()));
    rap_obs::disable_tracing();
    let events = rap_obs::drain_events();
    let spans = events.iter().filter(|e| e.kind == "verify_job").count();
    assert_eq!(spans, 4, "one span per job: {events:?}");
    assert!(
        events.iter().any(|e| e.kind == "segment_build"),
        "cold cache must emit segment_build events"
    );
    assert_eq!(rap_obs::dropped_events(), 0);
}
