//! Adversarial integration tests (§IV-F): every attack class the
//! security analysis covers, exercised end-to-end.

use armv8m_isa::{Asm, Reg};
use mcu_sim::{ExecError, InjectedWrite, Machine, RAM_BASE, RAM_SIZE};
use rap_link::{link, LinkOptions, LinkedProgram};
use rap_track::{device_key, CfaEngine, Challenge, EngineConfig, Report, Verifier, Violation};

const KEY_SEED: &str = "attack-tests";

fn attest(
    linked: &LinkedProgram,
    prep: impl FnOnce(&mut Machine),
) -> Result<(Challenge, Vec<Report>), ExecError> {
    let engine = CfaEngine::new(device_key(KEY_SEED));
    let mut machine = Machine::new(linked.image.clone());
    prep(&mut machine);
    let chal = Challenge::from_seed(0xA77);
    let att = engine.attest(&mut machine, &linked.map, chal, EngineConfig::default())?;
    Ok((chal, att.reports))
}

fn verify(linked: &LinkedProgram, chal: Challenge, reports: &[Report]) -> Result<(), Violation> {
    Verifier::builder()
        .key(device_key(KEY_SEED))
        .image(linked.image.clone())
        .map(linked.map.clone())
        .build()
        .expect("key/image/map are all set")
        .verify(chal, reports)
        .map(|_| ())
}

fn rop_victim() -> LinkedProgram {
    let mut a = Asm::new();
    a.func("main");
    a.bl("service");
    a.halt();
    a.func("service");
    a.push(&[Reg::Lr]);
    a.movi(Reg::R0, 1);
    a.nop();
    a.nop();
    a.pop(&[Reg::Pc]);
    a.func("gadget");
    a.movi(Reg::R7, 0xBAD);
    a.halt();
    link(&a.into_module(), 0, LinkOptions::default()).unwrap()
}

#[test]
fn rop_via_stack_smash_is_reported() {
    let linked = rop_victim();
    let gadget = linked.image.symbol("gadget").unwrap();
    let (chal, reports) = attest(&linked, |m| {
        m.inject_write(InjectedWrite {
            after_instrs: 4,
            addr: RAM_BASE + RAM_SIZE - 4,
            value: gadget,
        });
    })
    .expect("attestation itself survives (the attack is at runtime)");
    match verify(&linked, chal, &reports) {
        Err(Violation::ReturnMismatch { got, .. }) => assert_eq!(got, gadget),
        other => panic!("expected ReturnMismatch, got {other:?}"),
    }
}

#[test]
fn rop_to_unaligned_gadget_is_reported() {
    // Jumping into the middle of an instruction stream: replay lands
    // on a non-instruction boundary.
    let linked = rop_victim();
    let gadget = linked.image.symbol("gadget").unwrap();
    let result = attest(&linked, |m| {
        m.inject_write(InjectedWrite {
            after_instrs: 4,
            addr: RAM_BASE + RAM_SIZE - 4,
            value: gadget + 2, // mid-instruction
        });
    });
    match result {
        // The interpreter models a fixed instruction stream, so a
        // mid-instruction PC faults on the device itself…
        Err(ExecError::InvalidPc { pc }) => assert_eq!(pc, gadget + 2),
        // …and if a platform tolerated it, the Verifier's replay would
        // land on the same invalid address.
        Ok((chal, reports)) => assert!(verify(&linked, chal, &reports).is_err()),
        Err(other) => panic!("unexpected fault {other}"),
    }
}

#[test]
fn jop_via_jump_table_corruption_is_reported() {
    // Corrupt a switch table so a dispatch lands at an arbitrary spot.
    let w = workloads::syringe::workload();
    let linked = link(&w.module, 0, LinkOptions::default()).unwrap();
    let engine = CfaEngine::new(device_key(KEY_SEED));
    let mut machine = Machine::new(linked.image.clone());
    (w.attach)(&mut machine);
    // The jump table lives at SCRATCH_BUF; redirect entry 0 (push) to
    // the shutdown block, skipping dosing logic.
    let shutdown = linked.image.symbol("shutdown").unwrap();
    machine.inject_write(InjectedWrite {
        after_instrs: 20,
        addr: workloads::SCRATCH_BUF,
        value: shutdown,
    });
    let chal = Challenge::from_seed(0xA78);
    let att = engine
        .attest(&mut machine, &linked.map, chal, EngineConfig::default())
        .expect("attests");
    // The Verifier reconstructs the path; the dispatch to `shutdown`
    // is visible evidence. Depending on downstream control flow the
    // replay either diverges (violation) or surfaces the anomalous
    // dispatch target in the path.
    let verifier = Verifier::builder()
        .key(device_key(KEY_SEED))
        .image(linked.image.clone())
        .map(linked.map.clone())
        .build()
        .expect("key/image/map are all set");
    match verifier.verify(chal, &att.reports) {
        Err(_) => {} // diverged: detected
        Ok(path) => {
            // Lossless evidence: the anomalous dispatch must be in the
            // reconstructed path for the policy layer to flag.
            let dispatched_to_shutdown = path.events.iter().any(|e| {
                matches!(e, rap_track::PathEvent::IndirectJump { dest, .. } if *dest == shutdown)
            });
            assert!(
                dispatched_to_shutdown,
                "evidence must expose the corrupted dispatch"
            );
        }
    }
}

#[test]
fn log_suppression_is_reported() {
    // Dropping entries from an otherwise-valid report breaks the MAC;
    // re-MACing requires the key; truncating the *stream* breaks the
    // final flag; so the only remaining move is replaying an old
    // report — which the challenge defeats. Exercise all three.
    let linked = rop_victim();
    let (chal, reports) = attest(&linked, |_| {}).expect("attests");
    verify(&linked, chal, &reports).expect("benign baseline");

    // 1. Entry suppression.
    let mut doctored = reports.clone();
    if !doctored[0].log.mtb.is_empty() {
        doctored[0].log.mtb.remove(0);
    }
    assert!(matches!(
        verify(&linked, chal, &doctored),
        Err(Violation::BadTag { .. })
    ));

    // 2. Whole-stream replacement with an empty log.
    let empty = vec![Report::new(
        &device_key(KEY_SEED),
        chal,
        reports[0].h_mem,
        rap_track::CfLog::new(),
        0,
        true,
        false,
    )];
    // (An adversary *without* the key cannot even do this; with the
    // verifier's own key the report authenticates but replay finds the
    // log inconsistent with any execution.)
    assert!(verify(&linked, chal, &empty).is_err());

    // 3. Replay of a stale session.
    let fresh_chal = Challenge::from_seed(0xFFFF);
    assert!(matches!(
        verify(&linked, fresh_chal, &reports),
        Err(Violation::ChallengeMismatch)
    ));
}

#[test]
fn forged_loop_record_is_reported() {
    // A variable-count loop whose logged condition the adversary
    // inflates: replay derives a different iteration count, the
    // downstream log no longer lines up (or the MAC already fails).
    let mut a = Asm::new();
    a.func("main");
    a.movi(Reg::R2, 3);
    a.mov(Reg::R0, Reg::R2);
    a.label("spin");
    a.subi(Reg::R0, Reg::R0, 1);
    a.cmpi(Reg::R0, 0);
    a.bne("spin");
    a.cmpi(Reg::R2, 0);
    a.beq("skip");
    a.movi(Reg::R6, 1);
    a.label("skip");
    a.halt();
    let linked = link(&a.into_module(), 0, LinkOptions::default()).unwrap();
    let (chal, mut reports) = attest(&linked, |_| {}).expect("attests");
    verify(&linked, chal, &reports).expect("benign baseline");

    reports[0].log.loop_records[0] = 999;
    assert!(matches!(
        verify(&linked, chal, &reports),
        Err(Violation::BadTag { .. })
    ));
}

#[test]
fn code_injection_faults_before_execution() {
    let linked = rop_victim();
    let result = attest(&linked, |m| {
        m.inject_write(InjectedWrite {
            after_instrs: 1,
            addr: linked.image.base(),
            value: 0,
        });
    });
    assert!(matches!(result, Err(ExecError::MpuViolation { .. })));
}

#[test]
fn mtb_cannot_be_disabled_by_ns_world() {
    // The DWT/MTB configuration surface lives behind the Secure World
    // API; the Non-Secure World has no bus path to it in the model.
    // Locking is enforced at the type level: `fabric` configuration is
    // only reachable through the machine owner (the engine). Verify
    // the MPU lock analogue: once locked, protection persists.
    let linked = rop_victim();
    let engine = CfaEngine::new(device_key(KEY_SEED));
    let mut machine = Machine::new(linked.image.clone());
    let chal = Challenge::from_seed(1);
    engine
        .attest(&mut machine, &linked.map, chal, EngineConfig::default())
        .unwrap();
    assert!(machine.mpu.is_locked());
    assert!(!machine
        .mpu
        .protect(mcu_sim::ProtectedRegion { base: 0, limit: 4 }));
    assert!(!machine.mpu.clear());
}
