//! Fleet-scale batch verification: equivalence with the sequential
//! verifier, typed rejection of truncated/trailing report streams, and
//! replay-cache behavior across repeated devices.

use armv8m_isa::{Asm, Reg};
use rap_link::{link, LinkOptions};
use rap_track::{
    device_key, BatchOptions, CfaEngine, Challenge, EngineConfig, FleetJob, Report, Verifier,
    Violation,
};

/// Attests one workload and returns everything needed to build jobs.
struct Attested {
    key: rap_track::Key,
    image: armv8m_isa::Image,
    map: rap_link::LinkMap,
    chal: Challenge,
    reports: Vec<Report>,
}

fn attest_workload(w: &workloads::Workload, seed: u64) -> Attested {
    let linked = link(&w.module, 0, LinkOptions::default()).expect("workload links");
    let key = device_key("fleet-test");
    let engine = CfaEngine::new(key.clone());
    let chal = Challenge::from_seed(seed);
    let mut machine = mcu_sim::Machine::new(linked.image.clone());
    (w.attach)(&mut machine);
    let att = engine
        .attest(
            &mut machine,
            &linked.map,
            chal,
            EngineConfig {
                max_instrs: w.max_instrs * 2,
                // Drain the MTB into partial reports well before the
                // 512-entry buffer can wrap (§IV-E): the long workloads
                // (prime, sort) record more packets than one buffer.
                watermark: Some(256),
            },
        )
        .expect("workload attests");
    Attested {
        key,
        image: linked.image,
        map: linked.map,
        chal,
        reports: att.reports,
    }
}

/// Builds a verifier for an attested workload through the builder API.
fn verifier_for(attested: &Attested) -> Verifier {
    Verifier::builder()
        .key(attested.key.clone())
        .image(attested.image.clone())
        .map(attested.map.clone())
        .build()
        .expect("key/image/map are all set")
}

/// Batch verification must be observationally identical to sequential
/// verification over the whole workloads suite — same `VerifiedPath`s
/// for benign streams, same `Violation`s for tampered ones.
#[test]
fn batch_matches_sequential_over_workloads() {
    for w in workloads::all() {
        let attested = attest_workload(&w, 11);
        let benign = FleetJob {
            device: format!("{}-benign", w.name),
            chal: attested.chal,
            reports: attested.reports.clone(),
        };
        // A tampered-but-re-signed variant: first MTB packet redirected
        // (the strongest adversary: holds the key, forges the log).
        let mut forged_reports = attested.reports.clone();
        let mut tampered = None;
        for (seq, r) in forged_reports.iter_mut().enumerate() {
            if !r.log.mtb.is_empty() {
                let mut log = r.log.clone();
                log.mtb[0].dest ^= 0x40;
                *r = Report::new(
                    &attested.key,
                    attested.chal,
                    r.h_mem,
                    log,
                    seq as u32,
                    r.is_final,
                    r.overflow,
                );
                tampered = Some(seq);
                break;
            }
        }
        let wrong_chal = FleetJob {
            device: format!("{}-wrong-chal", w.name),
            chal: Challenge::from_seed(99),
            reports: attested.reports.clone(),
        };
        let mut jobs = vec![benign, wrong_chal];
        if tampered.is_some() {
            jobs.push(FleetJob {
                device: format!("{}-forged", w.name),
                chal: attested.chal,
                reports: forged_reports,
            });
        }
        // Replicate so the batch actually exercises the worker pool.
        let jobs: Vec<FleetJob> = (0..4).flat_map(|_| jobs.clone()).collect();

        let seq_verifier = verifier_for(&attested);
        let batch_verifier = verifier_for(&attested);
        let sequential = seq_verifier
            .fleet(BatchOptions::with_threads(1))
            .sequential(jobs.clone());
        let batched = batch_verifier
            .fleet(BatchOptions::with_threads(8))
            .run(jobs);

        assert_eq!(sequential.len(), batched.len());
        for (s, b) in sequential.iter().zip(&batched) {
            assert_eq!(s.device, b.device, "{}: order must be preserved", w.name);
            assert_eq!(
                s.result, b.result,
                "{}: batch and sequential verdicts diverge on {}",
                w.name, s.device
            );
        }
        // The benign streams must verify, the others must not.
        for outcome in &batched {
            let should_pass = outcome.device.ends_with("-benign");
            assert_eq!(
                outcome.accepted(),
                should_pass,
                "{}: unexpected verdict {:?}",
                outcome.device,
                outcome.result
            );
        }

        // The two-level cache (thread-local L1 over sharded L2) must be
        // accounting-equivalent to the sequential path: every replayed
        // step is attributed to exactly one cache probe, so the probe
        // *total* is thread-count independent even though the hit/miss
        // split can shift (two workers may race to build one segment).
        let seq = seq_verifier.stats();
        let par = batch_verifier.stats();
        assert_eq!(seq.jobs, par.jobs, "{}: job totals diverge", w.name);
        assert_eq!(
            seq.cache_hits + seq.cache_misses,
            par.cache_hits + par.cache_misses,
            "{}: cache probe totals diverge (seq {seq:?} vs batch {par:?})",
            w.name
        );
        assert_eq!(
            seq.cached_steps, par.cached_steps,
            "{}: cached step totals diverge",
            w.name
        );
        assert_eq!(
            seq.live_steps, par.live_steps,
            "{}: live step totals diverge",
            w.name
        );
    }
}

/// Streaming (bounded-queue) and slice (atomic-dispenser) distribution
/// produce identical outcomes in identical order.
#[test]
fn streaming_path_matches_slice_path() {
    let w = &workloads::all()[0];
    let attested = attest_workload(w, 23);
    let jobs: Vec<FleetJob> = (0..12)
        .map(|i| FleetJob {
            device: format!("dev-{i:02}"),
            chal: attested.chal,
            reports: attested.reports.clone(),
        })
        .collect();
    let verifier = verifier_for(&attested);
    let fleet = verifier.fleet(BatchOptions::with_threads(4));
    let sliced = fleet.run(jobs.clone());
    let streamed = fleet.stream(jobs);
    assert_eq!(sliced.len(), streamed.len());
    for (a, b) in sliced.iter().zip(&streamed) {
        assert_eq!(a.device, b.device, "submission order must be preserved");
        assert_eq!(a.result, b.result);
    }
}

/// The three fleet entry points — dispenser `.run`, bounded-queue
/// `.stream`, and the single-threaded `.sequential` reference — agree
/// verdict-for-verdict on the same job set.
#[test]
fn fleet_handle_entry_points_agree() {
    let w = &workloads::all()[0];
    let attested = attest_workload(w, 29);
    let jobs: Vec<FleetJob> = (0..6)
        .map(|i| FleetJob {
            device: format!("handle-{i}"),
            chal: attested.chal,
            reports: attested.reports.clone(),
        })
        .collect();
    let verifier = verifier_for(&attested);
    let opts = BatchOptions::with_threads(4);

    let via_run = verifier.fleet(opts).run(jobs.clone());
    let via_stream = verifier.fleet(opts).stream(jobs.clone());
    let via_seq = verifier
        .fleet(BatchOptions::with_threads(1))
        .sequential(jobs);
    assert_eq!(via_run.len(), via_stream.len());
    assert_eq!(via_run.len(), via_seq.len());
    for ((a, b), c) in via_run.iter().zip(&via_stream).zip(&via_seq) {
        assert_eq!((&a.device, &a.result), (&b.device, &b.result));
        assert_eq!((&a.device, &a.result), (&c.device, &c.result));
    }
}

/// Eight workers chewing through an interleave of benign, truncated,
/// wrong-challenge, cut and trailing-forgery streams: outcomes come
/// back in submission order with the right verdict class per stream —
/// and nothing panics, poisons a shard lock, or deadlocks the pool.
#[test]
fn stress_interleaved_failures_across_8_workers() {
    let attested = mtb_heavy_attested();
    let full = &attested.reports[0];

    let resign = |log: rap_track::CfLog, is_final: bool| {
        vec![Report::new(
            &attested.key,
            attested.chal,
            full.h_mem,
            log,
            0,
            is_final,
            false,
        )]
    };
    let truncated = {
        let mut log = full.log.clone();
        log.mtb.truncate(log.mtb.len() / 2);
        resign(log, true)
    };
    let trailing = {
        let mut log = full.log.clone();
        let extra = log.mtb[0];
        log.mtb.push(extra);
        resign(log, true)
    };
    let cut = resign(full.log.clone(), false);

    // 40 jobs cycling through the five stream shapes.
    let jobs: Vec<FleetJob> = (0..40)
        .map(|i| {
            let (kind, chal, reports) = match i % 5 {
                0 => ("benign", attested.chal, attested.reports.clone()),
                1 => ("truncated", attested.chal, truncated.clone()),
                2 => (
                    "wrong-chal",
                    Challenge::from_seed(1234),
                    attested.reports.clone(),
                ),
                3 => ("cut", attested.chal, cut.clone()),
                _ => ("trailing", attested.chal, trailing.clone()),
            };
            FleetJob {
                device: format!("{i:02}-{kind}"),
                chal,
                reports,
            }
        })
        .collect();

    let verifier = verifier_for(&attested);
    let outcomes = verifier.fleet(BatchOptions::with_threads(8)).run(jobs);

    assert_eq!(outcomes.len(), 40);
    for (i, outcome) in outcomes.iter().enumerate() {
        assert!(
            outcome.device.starts_with(&format!("{i:02}-")),
            "slot {i} holds {} — submission order violated",
            outcome.device
        );
        let kind = outcome.device.split('-').nth(1).unwrap();
        match (kind, &outcome.result) {
            ("benign", Ok(_)) => {}
            ("truncated", Err(Violation::LogExhausted { .. })) => {}
            ("wrong", Err(Violation::BadTag { .. }))
            | ("wrong", Err(Violation::ChallengeMismatch)) => {}
            ("cut", Err(Violation::BadReportStream(_))) => {}
            ("trailing", Err(Violation::TrailingLog { .. }))
            | ("trailing", Err(Violation::UnexpectedSource { .. })) => {}
            (kind, other) => panic!("{}: {kind} stream got {other:?}", outcome.device),
        }
    }
    assert_eq!(verifier.stats().jobs, 40);
}

/// A program whose log carries MTB packets: a forward-exit loop over a
/// RAM load (cannot be statically elided, §IV-D inapplicable).
fn mtb_heavy_attested() -> Attested {
    let mut a = Asm::new();
    a.func("main");
    a.movi(Reg::R0, 0);
    a.mov32(Reg::R2, mcu_sim::RAM_BASE);
    a.label("head");
    a.ldr(Reg::R1, Reg::R2, 0);
    a.cmpi(Reg::R0, 5);
    a.beq("out");
    a.addi(Reg::R0, Reg::R0, 1);
    a.b("head");
    a.label("out");
    a.bl("leaf");
    a.halt();
    a.func("leaf");
    a.push(&[Reg::Lr]);
    a.nop();
    a.pop(&[Reg::Pc]);
    let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");
    let key = device_key("truncation");
    let engine = CfaEngine::new(key.clone());
    let chal = Challenge::from_seed(5);
    let mut machine = mcu_sim::Machine::new(linked.image.clone());
    let att = engine
        .attest(&mut machine, &linked.map, chal, EngineConfig::default())
        .expect("attests");
    Attested {
        key,
        image: linked.image,
        map: linked.map,
        chal,
        reports: att.reports,
    }
}

/// A log cut mid-stream (re-signed by the strongest adversary) yields
/// `LogExhausted`, never a panic.
#[test]
fn truncated_log_yields_log_exhausted() {
    let attested = mtb_heavy_attested();
    assert_eq!(attested.reports.len(), 1);
    let full = &attested.reports[0];
    assert!(full.log.mtb.len() >= 2, "need packets to truncate");

    let mut log = full.log.clone();
    log.mtb.truncate(log.mtb.len() / 2);
    let truncated = vec![Report::new(
        &attested.key,
        attested.chal,
        full.h_mem,
        log,
        0,
        true,
        false,
    )];
    let verifier = verifier_for(&attested);
    match verifier.verify(attested.chal, &truncated) {
        Err(Violation::LogExhausted { .. }) => {}
        other => panic!("expected LogExhausted, got {other:?}"),
    }
}

/// Trailing forged packets after the program's natural end yield
/// `TrailingLog`; a report stream whose final flag vanished (cut after
/// a partial report) yields `BadReportStream`.
#[test]
fn trailing_and_cut_streams_are_typed() {
    let attested = mtb_heavy_attested();
    let full = &attested.reports[0];

    let mut log = full.log.clone();
    let extra = log.mtb[0];
    log.mtb.push(extra);
    let trailing = vec![Report::new(
        &attested.key,
        attested.chal,
        full.h_mem,
        log,
        0,
        true,
        false,
    )];
    let verifier = verifier_for(&attested);
    match verifier.verify(attested.chal, &trailing) {
        Err(Violation::TrailingLog { .. }) | Err(Violation::UnexpectedSource { .. }) => {}
        other => panic!("expected TrailingLog/UnexpectedSource, got {other:?}"),
    }

    // Stream cut after a non-final report: the final flag is missing.
    let cut = vec![Report::new(
        &attested.key,
        attested.chal,
        full.h_mem,
        full.log.clone(),
        0,
        false, // claims more reports follow, but the stream ends
        false,
    )];
    match verifier.verify(attested.chal, &cut) {
        Err(Violation::BadReportStream(_)) => {}
        other => panic!("expected BadReportStream, got {other:?}"),
    }
}

/// Repeated devices running the same binary hit the shared replay
/// cache: the second job skips re-decoding deterministic stretches.
#[test]
fn replay_cache_shared_across_jobs() {
    let attested = mtb_heavy_attested();
    let verifier = verifier_for(&attested);

    let first = verifier
        .verify(attested.chal, &attested.reports)
        .expect("verifies");
    let after_first = verifier.stats();
    assert!(
        after_first.cache_misses > 0,
        "cold cache must build segments"
    );
    assert!(
        after_first.cached_steps > 0,
        "stretches must be bulk-applied"
    );

    let second = verifier
        .verify(attested.chal, &attested.reports)
        .expect("verifies");
    let after_second = verifier.stats();
    assert_eq!(first, second, "replay must be deterministic");
    assert_eq!(
        after_second.cache_misses, after_first.cache_misses,
        "warm cache must not rebuild any segment"
    );
    assert!(after_second.cache_hits > after_first.cache_hits);
    assert_eq!(after_second.jobs, 2);

    // A clone shares the same cache.
    let clone = verifier.clone();
    let third = clone
        .verify(attested.chal, &attested.reports)
        .expect("verifies");
    assert_eq!(first, third);
    assert_eq!(clone.stats().cache_misses, after_first.cache_misses);
}

/// The resumable stepper, driven one quantum at a time, reaches the
/// same verdict as the one-shot entry point.
#[test]
fn stepper_quanta_match_one_shot_verify() {
    let attested = mtb_heavy_attested();
    let verifier = verifier_for(&attested);
    let oneshot = verifier.verify(attested.chal, &attested.reports);

    let mut session = verifier
        .begin(attested.chal, &attested.reports)
        .expect("stream authenticates");
    let mut quanta = 0u64;
    let stepped = loop {
        quanta += 1;
        assert!(quanta < 1_000_000, "session failed to terminate");
        if let Some(verdict) = session.advance() {
            break verdict;
        }
    };
    assert_eq!(oneshot, stepped);
    assert!(quanta > 1, "a real program needs several quanta");
}
