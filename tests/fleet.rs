//! Fleet-scale batch verification: equivalence with the sequential
//! verifier, typed rejection of truncated/trailing report streams, and
//! replay-cache behavior across repeated devices.

use armv8m_isa::{Asm, Reg};
use rap_link::{link, LinkOptions};
use rap_track::{
    device_key, verify_fleet, verify_sequential, BatchOptions, CfaEngine, Challenge, EngineConfig,
    FleetJob, Report, Verifier, Violation,
};

/// Attests one workload and returns everything needed to build jobs.
struct Attested {
    key: rap_track::Key,
    image: armv8m_isa::Image,
    map: rap_link::LinkMap,
    chal: Challenge,
    reports: Vec<Report>,
}

fn attest_workload(w: &workloads::Workload, seed: u64) -> Attested {
    let linked = link(&w.module, 0, LinkOptions::default()).expect("workload links");
    let key = device_key("fleet-test");
    let engine = CfaEngine::new(key.clone());
    let chal = Challenge::from_seed(seed);
    let mut machine = mcu_sim::Machine::new(linked.image.clone());
    (w.attach)(&mut machine);
    let att = engine
        .attest(
            &mut machine,
            &linked.map,
            chal,
            EngineConfig {
                max_instrs: w.max_instrs * 2,
                // Drain the MTB into partial reports well before the
                // 512-entry buffer can wrap (§IV-E): the long workloads
                // (prime, sort) record more packets than one buffer.
                watermark: Some(256),
            },
        )
        .expect("workload attests");
    Attested {
        key,
        image: linked.image,
        map: linked.map,
        chal,
        reports: att.reports,
    }
}

/// Batch verification must be observationally identical to sequential
/// verification over the whole workloads suite — same `VerifiedPath`s
/// for benign streams, same `Violation`s for tampered ones.
#[test]
fn batch_matches_sequential_over_workloads() {
    for w in workloads::all() {
        let attested = attest_workload(&w, 11);
        let benign = FleetJob {
            device: format!("{}-benign", w.name),
            chal: attested.chal,
            reports: attested.reports.clone(),
        };
        // A tampered-but-re-signed variant: first MTB packet redirected
        // (the strongest adversary: holds the key, forges the log).
        let mut forged_reports = attested.reports.clone();
        let mut tampered = None;
        for (seq, r) in forged_reports.iter_mut().enumerate() {
            if !r.log.mtb.is_empty() {
                let mut log = r.log.clone();
                log.mtb[0].dest ^= 0x40;
                *r = Report::new(
                    &attested.key,
                    attested.chal,
                    r.h_mem,
                    log,
                    seq as u32,
                    r.is_final,
                    r.overflow,
                );
                tampered = Some(seq);
                break;
            }
        }
        let wrong_chal = FleetJob {
            device: format!("{}-wrong-chal", w.name),
            chal: Challenge::from_seed(99),
            reports: attested.reports.clone(),
        };
        let mut jobs = vec![benign, wrong_chal];
        if tampered.is_some() {
            jobs.push(FleetJob {
                device: format!("{}-forged", w.name),
                chal: attested.chal,
                reports: forged_reports,
            });
        }
        // Replicate so the batch actually exercises the worker pool.
        let jobs: Vec<FleetJob> = (0..4).flat_map(|_| jobs.clone()).collect();

        let sequential = verify_sequential(
            &Verifier::new(
                attested.key.clone(),
                attested.image.clone(),
                attested.map.clone(),
            ),
            jobs.clone(),
        );
        let batched = verify_fleet(
            &Verifier::new(
                attested.key.clone(),
                attested.image.clone(),
                attested.map.clone(),
            ),
            jobs,
            BatchOptions::with_threads(8),
        );

        assert_eq!(sequential.len(), batched.len());
        for (s, b) in sequential.iter().zip(&batched) {
            assert_eq!(s.device, b.device, "{}: order must be preserved", w.name);
            assert_eq!(
                s.result, b.result,
                "{}: batch and sequential verdicts diverge on {}",
                w.name, s.device
            );
        }
        // The benign streams must verify, the others must not.
        for outcome in &batched {
            let should_pass = outcome.device.ends_with("-benign");
            assert_eq!(
                outcome.accepted(),
                should_pass,
                "{}: unexpected verdict {:?}",
                outcome.device,
                outcome.result
            );
        }
    }
}

/// A program whose log carries MTB packets: a forward-exit loop over a
/// RAM load (cannot be statically elided, §IV-D inapplicable).
fn mtb_heavy_attested() -> Attested {
    let mut a = Asm::new();
    a.func("main");
    a.movi(Reg::R0, 0);
    a.mov32(Reg::R2, mcu_sim::RAM_BASE);
    a.label("head");
    a.ldr(Reg::R1, Reg::R2, 0);
    a.cmpi(Reg::R0, 5);
    a.beq("out");
    a.addi(Reg::R0, Reg::R0, 1);
    a.b("head");
    a.label("out");
    a.bl("leaf");
    a.halt();
    a.func("leaf");
    a.push(&[Reg::Lr]);
    a.nop();
    a.pop(&[Reg::Pc]);
    let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");
    let key = device_key("truncation");
    let engine = CfaEngine::new(key.clone());
    let chal = Challenge::from_seed(5);
    let mut machine = mcu_sim::Machine::new(linked.image.clone());
    let att = engine
        .attest(&mut machine, &linked.map, chal, EngineConfig::default())
        .expect("attests");
    Attested {
        key,
        image: linked.image,
        map: linked.map,
        chal,
        reports: att.reports,
    }
}

/// A log cut mid-stream (re-signed by the strongest adversary) yields
/// `LogExhausted`, never a panic.
#[test]
fn truncated_log_yields_log_exhausted() {
    let attested = mtb_heavy_attested();
    assert_eq!(attested.reports.len(), 1);
    let full = &attested.reports[0];
    assert!(full.log.mtb.len() >= 2, "need packets to truncate");

    let mut log = full.log.clone();
    log.mtb.truncate(log.mtb.len() / 2);
    let truncated = vec![Report::new(
        &attested.key,
        attested.chal,
        full.h_mem,
        log,
        0,
        true,
        false,
    )];
    let verifier = Verifier::new(
        attested.key.clone(),
        attested.image.clone(),
        attested.map.clone(),
    );
    match verifier.verify(attested.chal, &truncated) {
        Err(Violation::LogExhausted { .. }) => {}
        other => panic!("expected LogExhausted, got {other:?}"),
    }
}

/// Trailing forged packets after the program's natural end yield
/// `TrailingLog`; a report stream whose final flag vanished (cut after
/// a partial report) yields `BadReportStream`.
#[test]
fn trailing_and_cut_streams_are_typed() {
    let attested = mtb_heavy_attested();
    let full = &attested.reports[0];

    let mut log = full.log.clone();
    let extra = log.mtb[0];
    log.mtb.push(extra);
    let trailing = vec![Report::new(
        &attested.key,
        attested.chal,
        full.h_mem,
        log,
        0,
        true,
        false,
    )];
    let verifier = Verifier::new(
        attested.key.clone(),
        attested.image.clone(),
        attested.map.clone(),
    );
    match verifier.verify(attested.chal, &trailing) {
        Err(Violation::TrailingLog { .. }) | Err(Violation::UnexpectedSource { .. }) => {}
        other => panic!("expected TrailingLog/UnexpectedSource, got {other:?}"),
    }

    // Stream cut after a non-final report: the final flag is missing.
    let cut = vec![Report::new(
        &attested.key,
        attested.chal,
        full.h_mem,
        full.log.clone(),
        0,
        false, // claims more reports follow, but the stream ends
        false,
    )];
    match verifier.verify(attested.chal, &cut) {
        Err(Violation::BadReportStream(_)) => {}
        other => panic!("expected BadReportStream, got {other:?}"),
    }
}

/// Repeated devices running the same binary hit the shared replay
/// cache: the second job skips re-decoding deterministic stretches.
#[test]
fn replay_cache_shared_across_jobs() {
    let attested = mtb_heavy_attested();
    let verifier = Verifier::new(
        attested.key.clone(),
        attested.image.clone(),
        attested.map.clone(),
    );

    let first = verifier
        .verify(attested.chal, &attested.reports)
        .expect("verifies");
    let after_first = verifier.stats();
    assert!(
        after_first.cache_misses > 0,
        "cold cache must build segments"
    );
    assert!(
        after_first.cached_steps > 0,
        "stretches must be bulk-applied"
    );

    let second = verifier
        .verify(attested.chal, &attested.reports)
        .expect("verifies");
    let after_second = verifier.stats();
    assert_eq!(first, second, "replay must be deterministic");
    assert_eq!(
        after_second.cache_misses, after_first.cache_misses,
        "warm cache must not rebuild any segment"
    );
    assert!(after_second.cache_hits > after_first.cache_hits);
    assert_eq!(after_second.jobs, 2);

    // A clone shares the same cache.
    let clone = verifier.clone();
    let third = clone
        .verify(attested.chal, &attested.reports)
        .expect("verifies");
    assert_eq!(first, third);
    assert_eq!(clone.stats().cache_misses, after_first.cache_misses);
}

/// The resumable stepper, driven one quantum at a time, reaches the
/// same verdict as the one-shot entry point.
#[test]
fn stepper_quanta_match_one_shot_verify() {
    let attested = mtb_heavy_attested();
    let verifier = Verifier::new(
        attested.key.clone(),
        attested.image.clone(),
        attested.map.clone(),
    );
    let oneshot = verifier.verify(attested.chal, &attested.reports);

    let mut session = verifier
        .begin(attested.chal, &attested.reports)
        .expect("stream authenticates");
    let mut quanta = 0u64;
    let stepped = loop {
        quanta += 1;
        assert!(quanta < 1_000_000, "session failed to terminate");
        if let Some(verdict) = session.advance() {
            break verdict;
        }
    };
    assert_eq!(oneshot, stepped);
    assert!(quanta > 1, "a real program needs several quanta");
}
