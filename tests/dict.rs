//! Dictionary-compression equivalence: for every workload, replaying a
//! dictionary-compressed (v2) report stream must be *observationally
//! identical* to replaying the plain stream — same [`VerifiedPath`],
//! same [`PathStats`], same policy findings — and every way the
//! dictionary can be wrong must map to its own typed [`Violation`].

use rap_track::{
    decode_stream, device_key, encode_stream, CfaEngine, Challenge, DictParams, EngineConfig,
    PathPolicy, PathStats, Report, SubPathDict, VerifiedPath, Verifier, Violation,
};

const PARAMS: DictParams = DictParams {
    top_k: 32,
    min_support: 3,
    max_len: 16,
};

struct Legs {
    plain_reports: Vec<Report>,
    dict_reports: Vec<Report>,
    dict_hits: usize,
    plain_path: VerifiedPath,
    dict_path: VerifiedPath,
    verifier_plain: Verifier,
    verifier_dict: Verifier,
    dict: SubPathDict,
    linked: rap_link::LinkedProgram,
    chal: Challenge,
    key: rap_track::Key,
}

fn attest(
    w: &workloads::Workload,
    linked: &rap_link::LinkedProgram,
    engine: &CfaEngine,
    chal: Challenge,
) -> rap_track::Attestation {
    let mut machine = mcu_sim::Machine::new(linked.image.clone());
    (w.attach)(&mut machine);
    engine
        .attest(
            &mut machine,
            &linked.map,
            chal,
            EngineConfig {
                watermark: Some(448),
                max_instrs: w.max_instrs * 2,
            },
        )
        .unwrap_or_else(|e| panic!("{}: attest: {e}", w.name))
}

/// Runs one workload through both legs — plain and dictionary — and
/// verifies both streams.
fn both_legs(w: &workloads::Workload) -> Legs {
    let linked = rap_link::link(&w.module, 0, rap_link::LinkOptions::default()).unwrap();
    let key = device_key("dict-test");
    let chal = Challenge::from_seed(7);

    let plain = attest(w, &linked, &CfaEngine::new(key.clone()), chal);
    let h_mem = plain.reports.first().expect("reports").h_mem;
    let dict = SubPathDict::mine(&plain.combined_log(), h_mem, w.name, PARAMS);
    let compressed = attest(
        w,
        &linked,
        &CfaEngine::new(key.clone()).with_dict(dict.entries().to_vec()),
        chal,
    );
    let dict_hits = compressed
        .reports
        .iter()
        .map(|r| r.log.dict_hits.len())
        .sum();

    let verifier_plain = Verifier::builder()
        .key(key.clone())
        .image(linked.image.clone())
        .map(linked.map.clone())
        .build()
        .unwrap();
    let verifier_dict = Verifier::builder()
        .key(key.clone())
        .image(linked.image.clone())
        .map(linked.map.clone())
        .dict(dict.clone())
        .build()
        .unwrap();

    let plain_path = verifier_plain
        .verify(chal, &plain.reports)
        .unwrap_or_else(|e| panic!("{}: plain verify: {e}", w.name));
    let dict_path = verifier_dict
        .verify(chal, &compressed.reports)
        .unwrap_or_else(|e| panic!("{}: dict verify: {e}", w.name));

    Legs {
        plain_reports: plain.reports,
        dict_reports: compressed.reports,
        dict_hits,
        plain_path,
        dict_path,
        verifier_plain,
        verifier_dict,
        dict,
        linked,
        chal,
        key,
    }
}

/// The headline equivalence: identical [`VerifiedPath`], identical
/// structural stats, identical policy findings, on every workload.
#[test]
fn dict_replay_is_observationally_identical() {
    for w in workloads::all() {
        let legs = both_legs(&w);
        assert_eq!(
            legs.plain_path, legs.dict_path,
            "{}: VerifiedPath diverged",
            w.name
        );
        assert_eq!(
            PathStats::of(&legs.plain_path),
            PathStats::of(&legs.dict_path),
            "{}: PathStats diverged",
            w.name
        );
        // A policy that generates findings on most paths: forbid any
        // indirect jumps and bound every optimized loop tightly.
        let mut policy = PathPolicy::new().bound_indirect_jumps(0);
        for header in PathStats::of(&legs.plain_path)
            .loop_iterations_by_header
            .keys()
        {
            policy = policy.bound_loop(*header, 1);
        }
        assert_eq!(
            policy.check(&legs.plain_path),
            policy.check(&legs.dict_path),
            "{}: policy findings diverged",
            w.name
        );
    }
}

/// Dictionaries must actually fire and shrink the wire image on the
/// loop-dominated workloads — otherwise the equivalence above is
/// vacuous.
#[test]
fn dict_compresses_loop_heavy_workloads() {
    for name in ["prime", "crc32", "bubblesort", "matmult", "fir"] {
        let w = workloads::by_name(name).unwrap();
        let legs = both_legs(&w);
        assert!(legs.dict_hits > 0, "{name}: no dictionary hits");
        let plain_bytes = encode_stream(&legs.plain_reports).len();
        let dict_bytes = encode_stream(&legs.dict_reports).len();
        assert!(
            dict_bytes < plain_bytes,
            "{name}: wire did not shrink ({dict_bytes} vs {plain_bytes})"
        );
    }
}

/// A dictionary mined for a different binary must be rejected with the
/// dedicated typed verdict, not replayed.
#[test]
fn wrong_image_dict_rejects_typed() {
    let w = workloads::by_name("prime").unwrap();
    let legs = both_legs(&w);
    if legs.dict_hits == 0 {
        panic!("prime produced no dictionary hits");
    }
    let wrong = SubPathDict::mine(
        &rap_track::CfLog {
            mtb: legs.dict_reports[0].log.mtb.clone(),
            loop_records: vec![],
            dict_hits: vec![],
        },
        [0xAA; 32],
        "other-binary",
        PARAMS,
    );
    let verifier = Verifier::builder()
        .key(legs.key.clone())
        .image(legs.linked.image.clone())
        .map(legs.linked.map.clone())
        .dict(wrong)
        .build()
        .unwrap();
    match verifier.verify(legs.chal, &legs.dict_reports) {
        Err(Violation::DictImageMismatch) => {}
        other => panic!("expected DictImageMismatch, got {other:?}"),
    }
}

/// A hit record referencing an id the dictionary does not define must
/// reject with `UnknownDictId`, carrying the offending id.
#[test]
fn unknown_dict_id_rejects_typed() {
    let w = workloads::by_name("prime").unwrap();
    let legs = both_legs(&w);
    let bogus = legs.dict.len() as u32 + 17;
    let last = legs.dict_reports.len() - 1;
    let forged: Vec<Report> = legs
        .dict_reports
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut log = r.log.clone();
            for h in &mut log.dict_hits {
                h.id = bogus;
            }
            Report::new(
                &legs.key,
                legs.chal,
                r.h_mem,
                log,
                i as u32,
                i == last,
                r.overflow,
            )
        })
        .collect();
    match legs.verifier_dict.verify(legs.chal, &forged) {
        Err(Violation::UnknownDictId { id }) => assert_eq!(id, bogus),
        other => panic!("expected UnknownDictId, got {other:?}"),
    }
}

/// A dictionary-bearing stream presented to a verifier with no
/// dictionary loaded must reject with `DictUnavailable` — silently
/// ignoring the hits would drop evidence.
#[test]
fn dict_stream_without_dict_rejects_typed() {
    let w = workloads::by_name("prime").unwrap();
    let legs = both_legs(&w);
    assert!(legs.dict_hits > 0);
    match legs.verifier_plain.verify(legs.chal, &legs.dict_reports) {
        Err(Violation::DictUnavailable) => {}
        other => panic!("expected DictUnavailable, got {other:?}"),
    }
}

/// Wire round-trips pinned for both format versions: a v1 (plain)
/// stream and a v2 (dictionary-bearing) stream must each survive
/// encode → decode → encode byte-identically, and the version byte
/// must only be bumped when hit records are present.
#[test]
fn wire_round_trips_pinned_v1_and_v2() {
    let w = workloads::by_name("prime").unwrap();
    let legs = both_legs(&w);

    let v1 = encode_stream(&legs.plain_reports);
    let decoded_v1 = decode_stream(&v1).expect("v1 decodes");
    assert_eq!(encode_stream(&decoded_v1), v1, "v1 round-trip drifted");
    assert_eq!(v1[4], 1, "plain stream must stay on wire version 1");

    let v2 = encode_stream(&legs.dict_reports);
    let decoded_v2 = decode_stream(&v2).expect("v2 decodes");
    assert_eq!(encode_stream(&decoded_v2), v2, "v2 round-trip drifted");
    assert!(
        legs.dict_reports
            .iter()
            .any(|r| !r.log.dict_hits.is_empty()),
        "prime stream carries hits"
    );

    // Decoded logs are structurally identical to what was encoded.
    for (a, b) in decoded_v2.iter().zip(&legs.dict_reports) {
        assert_eq!(a.log.dict_hits, b.log.dict_hits);
        assert_eq!(a.log.mtb, b.log.mtb);
        assert_eq!(a.log.loop_records, b.log.loop_records);
    }
}
