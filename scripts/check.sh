#!/usr/bin/env bash
# The full local gate: everything CI runs, in the order a developer
# wants failures reported (cheap formatting first would hide build
# breakage behind style noise, so build comes first).
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace
run cargo test -q --workspace
run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings

echo "==> all checks passed"
