#!/usr/bin/env bash
# The full local gate: everything CI runs, in the order a developer
# wants failures reported (cheap formatting first would hide build
# breakage behind style noise, so build comes first).
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace
run cargo test -q --workspace
run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" run cargo doc --no-deps --workspace

# The examples are living documentation — they must keep running, not
# just keep compiling.
run cargo run --release -q --example quickstart
run cargo run --release -q --example attack_detection
run cargo run --release -q --example partial_reports

# Fuzz smoke: a fixed-seed differential campaign (deterministic, so
# any failure here reproduces locally from the printed case seed), and
# the sabotage self-test proving the harness catches an injected MTB
# corruption (inverted semantics: exit 0 means the fault WAS caught).
run cargo run --release -q -p rap-cli --bin rap -- fuzz --seed 1 --iters 200 --json "$PWD/FUZZ_summary.json"
run cargo run --release -q -p rap-cli --bin rap -- fuzz --seed 2 --iters 20 --sabotage

# Bench smoke: reduced configurations, but they still exercise the
# speedup/overhead assertions and regenerate the JSON artifacts.
run cargo bench -p rap-bench --bench fleet -- --quick --json "$PWD/BENCH_fleet.json"
run cargo bench -p rap-bench --bench figures -- --quick --json "$PWD/BENCH_figures.json"
run cargo bench -p rap-bench --bench obs -- --quick
# Scaling gate: --enforce fails the run if the 4-thread fleet speedup
# drops below 1.5x (the bench itself skips the gate, with a note, on
# hosts with fewer than 4 cores — the pool cannot scale there).
run cargo bench -p rap-bench --bench scaling -- --quick --json "$PWD/BENCH_scaling.json" --enforce
# Saturation gate: pipelined throughput at 8 clients must stay >= 3x
# the connection-per-round baseline on loopback.
run cargo bench -p rap-bench --bench serve -- --quick --json "$PWD/BENCH_serve.json" --enforce
# Dictionary gate: on the loop-heavy workloads the mined sub-path
# dictionary must save >= 30% wire bytes and speed single-stream
# verification up by >= 1.15x (with replay equivalence asserted
# against the plain stream before anything is timed).
run cargo bench -p rap-bench --bench dict -- --quick --json "$PWD/BENCH_dict.json" --enforce
# Fleet control plane scaling: pure registry+scheduler cost (no
# network) at 10/100/1000 devices, with p99 in-slot scheduling lag.
run cargo bench -p rap-bench --bench fleet_plane -- --quick --json "$PWD/BENCH_fleet_plane.json"
# Audit gate: sealing every verdict and hash-chaining it to disk must
# cost <= 5% pipelined throughput at 8 clients (gated on multi-core
# hosts; seal/append/replay microbenches always run).
run cargo bench -p rap-bench --bench audit -- --quick --json "$PWD/BENCH_audit.json" --enforce

# Serve smoke: one real loopback deployment of the attestation service
# with the telemetry plane bound (--admin). The server gets a
# three-connection budget (--limit 3) so it drains and exits on its
# own: a benign device runs a pipelined session, then reconnects with
# its resumption token and runs more rounds without a re-HELLO (exit 0,
# two connections), and a wrong-key prover must be rejected (exit 1,
# third connection). Between those, the admin endpoint is scraped live:
# `rap top --smoke` sandwich-checks the Prometheus and JSON renderings
# against each other and writes TELEMETRY_smoke.json (admin
# connections do not count against --limit).
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
RAP=target/release/rap
echo "==> serve smoke (loopback attest-remote, resumed pipelined session, admin scrape)"
"$RAP" demo > "$SMOKE_DIR/demo.tasm"
"$RAP" link "$SMOKE_DIR/demo.tasm" -o "$SMOKE_DIR/demo.img" -m "$SMOKE_DIR/demo.map"
"$RAP" serve "$SMOKE_DIR/demo.img" "$SMOKE_DIR/demo.map" --limit 3 \
    --admin 127.0.0.1:0 --slow-ms 0 --audit-log "$SMOKE_DIR/audit.ralog" \
    > "$SMOKE_DIR/serve.log" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' "$SMOKE_DIR/serve.log" 2>/dev/null || true)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "serve smoke: server never reported its listen address" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
ADMIN_ADDR=$(sed -n 's/^admin on //p' "$SMOKE_DIR/serve.log")
if [ -z "$ADMIN_ADDR" ]; then
    echo "serve smoke: server did not report its admin address" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
grep -q "session secret (generated)" "$SMOKE_DIR/serve.log" || {
    echo "serve smoke: server did not log its generated session secret" >&2
    cat "$SMOKE_DIR/serve.log" >&2
    exit 1
}
echo "==> $RAP attest-remote --device smoke-benign --rounds 2 --window 2 --resume"
"$RAP" attest-remote "$SMOKE_DIR/demo.img" "$SMOKE_DIR/demo.map" \
    --addr "$ADDR" --device smoke-benign --rounds 2 --window 2 --resume \
    | tee "$SMOKE_DIR/benign.log"
grep -q "session resumed" "$SMOKE_DIR/benign.log" || {
    echo "serve smoke: session was not resumed" >&2
    cat "$SMOKE_DIR/benign.log" >&2
    exit 1
}
grep -q "4/4 round(s) accepted" "$SMOKE_DIR/benign.log" || {
    echo "serve smoke: expected 4 accepted rounds across both connections" >&2
    cat "$SMOKE_DIR/benign.log" >&2
    exit 1
}
# Scrape the admin plane while the server is still up (before the
# third connection exhausts --limit): the smoke asserts every counter
# satisfies prom <= json <= prom across the three snapshot scrapes,
# and --slow-ms 0 guarantees the benign rounds left exemplars behind.
run "$RAP" top "$ADMIN_ADDR" --smoke "$PWD/TELEMETRY_smoke.json"
run "$RAP" stats --watch "$ADMIN_ADDR" --iters 1
grep -q '"exemplars_retained": 4' "$PWD/TELEMETRY_smoke.json" || {
    echo "serve smoke: expected all 4 rounds retained as exemplars" >&2
    cat "$PWD/TELEMETRY_smoke.json" >&2
    exit 1
}
if "$RAP" attest-remote "$SMOKE_DIR/demo.img" "$SMOKE_DIR/demo.map" \
    --addr "$ADDR" --device smoke-attacker --key wrong-key \
    > "$SMOKE_DIR/attacker.log" 2>&1; then
    echo "serve smoke: wrong-key prover was accepted" >&2
    cat "$SMOKE_DIR/attacker.log" >&2
    exit 1
fi
grep -q "REJECTED" "$SMOKE_DIR/attacker.log" || {
    echo "serve smoke: wrong-key round did not report REJECTED" >&2
    cat "$SMOKE_DIR/attacker.log" >&2
    exit 1
}
wait "$SERVE_PID"
grep -q "served 3 connection" "$SMOKE_DIR/serve.log" || {
    echo "serve smoke: server did not drain after --limit 3" >&2
    cat "$SMOKE_DIR/serve.log" >&2
    exit 1
}

# Audit smoke: the serve run above chained every verdict (4 accepted +
# 1 rejected) into audit.ralog. The chain must replay cleanly under
# the operator's key, and flipping a single byte must break it with a
# typed first break and a non-zero exit.
echo "==> audit smoke (hash-chained verdict log, tamper detection)"
run "$RAP" audit verify "$SMOKE_DIR/audit.ralog" --key default-device \
    | tee "$SMOKE_DIR/audit.log"
grep -q "entries=5" "$SMOKE_DIR/audit.log" || {
    echo "audit smoke: expected 5 chained verdicts" >&2
    cat "$SMOKE_DIR/audit.log" >&2
    exit 1
}
grep -q "chain and seals verified" "$SMOKE_DIR/audit.log" || {
    echo "audit smoke: seals were not verified" >&2
    cat "$SMOKE_DIR/audit.log" >&2
    exit 1
}
run "$RAP" audit tail "$SMOKE_DIR/audit.ralog" --key default-device --last 2
cp "$SMOKE_DIR/audit.ralog" "$SMOKE_DIR/tampered.ralog"
# Offset 9 is the first record's magic ('R' of RAPV) — overwrite it.
printf 'X' | dd of="$SMOKE_DIR/tampered.ralog" bs=1 seek=9 count=1 conv=notrunc 2>/dev/null
if "$RAP" audit verify "$SMOKE_DIR/tampered.ralog" --key default-device \
    > "$SMOKE_DIR/tamper.log" 2>&1; then
    echo "audit smoke: tampered log verified cleanly" >&2
    cat "$SMOKE_DIR/tamper.log" >&2
    exit 1
fi
grep -q "BROKEN:" "$SMOKE_DIR/tamper.log" || {
    echo "audit smoke: tampered log did not report a typed break" >&2
    cat "$SMOKE_DIR/tamper.log" >&2
    exit 1
}

# Dictionary smoke: the full `rap profile` loop on a loop-heavy
# program — profile once, attest with the dictionary loaded, assert
# the compressed report stream actually shrank on disk, then verify it
# with the same dictionary. The artifact lands in $PWD so CI uploads
# it next to BENCH_dict.json.
echo "==> dict smoke (profile, compressed attest, verify --dict)"
cat > "$SMOKE_DIR/loopy.tasm" <<'EOF'
.func main
    movw r0, #40
    movw r1, #0
loop:
    cmp r1, #100
    beq skip
    adds r1, r1, #1
skip:
    subs r0, r0, #1
    cmp r0, #0
    bne loop
    halt
EOF
"$RAP" link "$SMOKE_DIR/loopy.tasm" -o "$SMOKE_DIR/loopy.img" -m "$SMOKE_DIR/loopy.map"
run "$RAP" profile "$SMOKE_DIR/loopy.img" "$SMOKE_DIR/loopy.map" -o "$PWD/PROFILE_loopy.dict"
"$RAP" attest "$SMOKE_DIR/loopy.img" "$SMOKE_DIR/loopy.map" --chal 7 \
    -o "$SMOKE_DIR/plain.rpt"
"$RAP" attest "$SMOKE_DIR/loopy.img" "$SMOKE_DIR/loopy.map" --chal 7 \
    --dict "$PWD/PROFILE_loopy.dict" -o "$SMOKE_DIR/dict.rpt"
PLAIN_BYTES=$(wc -c < "$SMOKE_DIR/plain.rpt")
DICT_BYTES=$(wc -c < "$SMOKE_DIR/dict.rpt")
if [ "$DICT_BYTES" -ge "$PLAIN_BYTES" ]; then
    echo "dict smoke: compressed report did not shrink ($DICT_BYTES >= $PLAIN_BYTES bytes)" >&2
    exit 1
fi
echo "dict smoke: report stream $PLAIN_BYTES -> $DICT_BYTES bytes"
run "$RAP" verify "$SMOKE_DIR/loopy.img" "$SMOKE_DIR/loopy.map" "$SMOKE_DIR/dict.rpt" \
    --chal 7 --dict "$PWD/PROFILE_loopy.dict"

# Fleet smoke: a deterministic 4-device loopback fleet with one
# compromised actor — the run must quarantine it (exit 0 asserts
# containment), the transition log must show the quarantine, and the
# persisted registry must round-trip through `rap fleet status`.
echo "==> fleet smoke (simulated fleet, compromise -> quarantine)"
run "$RAP" fleet run --devices 4 --compromised 1 --slots 18 --seed 7 \
    --json "$SMOKE_DIR/fleet.json" | tee "$SMOKE_DIR/fleet.log"
grep -q "suspect -> quarantined (reject-threshold)" "$SMOKE_DIR/fleet.log" || {
    echo "fleet smoke: compromised device was not quarantined" >&2
    cat "$SMOKE_DIR/fleet.log" >&2
    exit 1
}
"$RAP" fleet status "$SMOKE_DIR/fleet.json" --json \
    | grep -q '"state": *"quarantined"\|"state":"quarantined"' || {
    echo "fleet smoke: quarantine missing from status JSON" >&2
    "$RAP" fleet status "$SMOKE_DIR/fleet.json" >&2
    exit 1
}

echo "==> all checks passed"
