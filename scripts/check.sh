#!/usr/bin/env bash
# The full local gate: everything CI runs, in the order a developer
# wants failures reported (cheap formatting first would hide build
# breakage behind style noise, so build comes first).
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace
run cargo test -q --workspace
run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" run cargo doc --no-deps --workspace

# The examples are living documentation — they must keep running, not
# just keep compiling.
run cargo run --release -q --example quickstart
run cargo run --release -q --example attack_detection
run cargo run --release -q --example partial_reports

# Fuzz smoke: a fixed-seed differential campaign (deterministic, so
# any failure here reproduces locally from the printed case seed), and
# the sabotage self-test proving the harness catches an injected MTB
# corruption (inverted semantics: exit 0 means the fault WAS caught).
run cargo run --release -q -p rap-cli --bin rap -- fuzz --seed 1 --iters 200 --json "$PWD/FUZZ_summary.json"
run cargo run --release -q -p rap-cli --bin rap -- fuzz --seed 2 --iters 20 --sabotage

# Bench smoke: reduced configurations, but they still exercise the
# speedup/overhead assertions and regenerate the JSON artifacts.
run cargo bench -p rap-bench --bench fleet -- --quick --json "$PWD/BENCH_fleet.json"
run cargo bench -p rap-bench --bench figures -- --quick --json "$PWD/BENCH_figures.json"
run cargo bench -p rap-bench --bench obs -- --quick
# Scaling gate: --enforce fails the run if the 4-thread fleet speedup
# drops below 1.5x (the bench itself skips the gate, with a note, on
# hosts with fewer than 4 cores — the pool cannot scale there).
run cargo bench -p rap-bench --bench scaling -- --quick --json "$PWD/BENCH_scaling.json" --enforce

echo "==> all checks passed"
