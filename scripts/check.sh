#!/usr/bin/env bash
# The full local gate: everything CI runs, in the order a developer
# wants failures reported (cheap formatting first would hide build
# breakage behind style noise, so build comes first).
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace
run cargo test -q --workspace
run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" run cargo doc --no-deps --workspace

# Bench smoke: reduced configurations, but they still exercise the
# speedup/overhead assertions and regenerate the JSON artifacts.
run cargo bench -p rap-bench --bench fleet -- --quick --json "$PWD/BENCH_fleet.json"
run cargo bench -p rap-bench --bench figures -- --quick --json "$PWD/BENCH_figures.json"
run cargo bench -p rap-bench --bench obs -- --quick

echo "==> all checks passed"
